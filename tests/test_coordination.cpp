// Deeper coordination-layer tests: task-graph validation, annealing
// behaviour, Gantt rendering, runtime error paths, version-choice lookups.
#include <gtest/gtest.h>

#include "coordination/glue.hpp"
#include "coordination/runtime.hpp"
#include "coordination/scheduler.hpp"
#include "coordination/task_graph.hpp"
#include "support/rng.hpp"

namespace {

using namespace teamplay;
using coordination::Task;
using coordination::TaskGraph;
using coordination::VersionChoice;

TaskGraph chain(int n) {
    TaskGraph graph;
    graph.app_name = "chain";
    for (int i = 0; i < n; ++i) {
        Task task;
        task.name = "t" + std::to_string(i);
        task.entry_fn = task.name;
        if (i > 0) task.deps.push_back("t" + std::to_string(i - 1));
        task.versions[""] = {{0.01, 0.001, 0.0, 0, "only"}};
        graph.tasks.push_back(std::move(task));
    }
    return graph;
}

TEST(TaskGraphValidation, DetectsAllProblemClasses) {
    TaskGraph graph;
    Task a;
    a.name = "a";
    a.deps = {"missing", "a"};
    // no versions
    graph.tasks.push_back(a);
    const auto errors = graph.validate();
    bool unknown_dep = false;
    bool self_dep = false;
    bool no_versions = false;
    for (const auto& error : errors) {
        unknown_dep |= error.find("unknown task") != std::string::npos;
        self_dep |= error.find("itself") != std::string::npos;
        no_versions |= error.find("no versions") != std::string::npos;
    }
    EXPECT_TRUE(unknown_dep);
    EXPECT_TRUE(self_dep);
    EXPECT_TRUE(no_versions);
}

TEST(TaskGraphValidation, NonPositiveVersionTimesFlagged) {
    TaskGraph graph;
    Task a;
    a.name = "a";
    a.versions[""] = {{0.0, 0.001, 0.0, 0, "bad"}};
    graph.tasks.push_back(a);
    EXPECT_FALSE(graph.validate().empty());
}

TEST(TaskGraphValidation, CycleDetected) {
    TaskGraph graph;
    Task a;
    a.name = "a";
    a.deps = {"b"};
    a.versions[""] = {{0.01, 0.0, 0.0, 0, ""}};
    Task b;
    b.name = "b";
    b.deps = {"a"};
    b.versions[""] = {{0.01, 0.0, 0.0, 0, ""}};
    graph.tasks.push_back(a);
    graph.tasks.push_back(b);
    EXPECT_THROW((void)graph.topological_order(), std::runtime_error);
    bool cycle = false;
    for (const auto& error : graph.validate())
        cycle |= error.find("cycle") != std::string::npos;
    EXPECT_TRUE(cycle);
}

TEST(TaskGraphValidation, TopologicalOrderRespectsDeps) {
    const auto graph = chain(6);
    const auto order = graph.topological_order();
    ASSERT_EQ(order.size(), 6u);
    std::vector<std::size_t> position(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (std::size_t i = 1; i < 6; ++i)
        EXPECT_LT(position[i - 1], position[i]);
}

TEST(TaskGraph, VersionsForFallsBackToWildcard) {
    Task task;
    task.versions[""] = {{0.01, 0.0, 0.0, 0, "any"}};
    task.versions["gpu"] = {{0.002, 0.0, 0.0, 0, "gpu"}};
    EXPECT_EQ(task.versions_for("gpu")->front().note, "gpu");
    EXPECT_EQ(task.versions_for("big")->front().note, "any");
    EXPECT_TRUE(task.runs_on("anything"));
    Task constrained;
    constrained.versions["fpga"] = {{0.01, 0.0, 0.0, 0, ""}};
    EXPECT_FALSE(constrained.runs_on("big"));
    EXPECT_EQ(constrained.versions_for("big"), nullptr);
}

TEST(Scheduler, ChainSerialisesOnSingleCore) {
    const auto nucleo = platform::nucleo_f091();
    const coordination::Scheduler scheduler(nucleo);
    const auto schedule = scheduler.schedule(chain(5), {});
    EXPECT_NEAR(schedule.makespan_s, 0.05, 1e-12);
    // Entries back-to-back.
    double previous_finish = 0.0;
    std::vector<const coordination::ScheduleEntry*> ordered;
    for (const auto& entry : schedule.entries) ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto* a, const auto* b) {
                  return a->start_s < b->start_s;
              });
    for (const auto* entry : ordered) {
        EXPECT_NEAR(entry->start_s, previous_finish, 1e-12);
        previous_finish = entry->finish_s;
    }
}

TEST(Scheduler, AnnealingNeverWorseThanGreedy) {
    support::Rng rng(77);
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    // Random multi-version graph.
    TaskGraph graph;
    for (int i = 0; i < 10; ++i) {
        Task task;
        task.name = "t" + std::to_string(i);
        if (i > 2) task.deps.push_back("t" + std::to_string(i - 3));
        const double base = rng.uniform(0.002, 0.01);
        task.versions[""] = {{base, base * 40.0, 0.0, 2, "fast"},
                             {base * 2.0, base * 18.0, 0.0, 0, "frugal"}};
        graph.tasks.push_back(std::move(task));
    }
    coordination::Scheduler::Options greedy;
    greedy.deadline_s = 0.2;
    greedy.anneal = false;
    const auto schedule_greedy = scheduler.schedule(graph, greedy);
    coordination::Scheduler::Options annealed = greedy;
    annealed.anneal = true;
    annealed.anneal_iterations = 300;
    const auto schedule_annealed = scheduler.schedule(graph, annealed);

    ASSERT_TRUE(schedule_greedy.feasible);
    ASSERT_TRUE(schedule_annealed.feasible);
    EXPECT_LE(schedule_annealed.platform_energy_j(tx2, 0.2),
              schedule_greedy.platform_energy_j(tx2, 0.2) * (1.0 + 1e-9));
}

TEST(Scheduler, PowerManagedIdleBeatsBusyWait) {
    const auto gr712 = platform::gr712rc();
    const coordination::Scheduler scheduler(gr712);
    const auto schedule = scheduler.schedule(chain(3), {});
    const double managed =
        schedule.platform_energy_j(gr712, 1.0, /*power_managed=*/true);
    const double busy_wait =
        schedule.platform_energy_j(gr712, 1.0, /*power_managed=*/false);
    EXPECT_LT(managed, busy_wait);
}

TEST(Schedule, GanttRendersOneRowPerCore) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    const auto schedule = scheduler.schedule(chain(4), {});
    const auto art = schedule.gantt(tx2, 40);
    // One row per core plus the axis.
    int rows = 0;
    for (const char c : art)
        if (c == '\n') ++rows;
    EXPECT_EQ(rows, static_cast<int>(tx2.cores.size()) + 1);
    EXPECT_NE(art.find('t'), std::string::npos);  // task marks present
}

TEST(Schedule, GanttHandlesEmptySchedule) {
    coordination::Schedule empty;
    EXPECT_EQ(empty.gantt(platform::nucleo_f091()), "(empty schedule)\n");
}

TEST(Schedule, EntryForLookup) {
    const auto nucleo = platform::nucleo_f091();
    const coordination::Scheduler scheduler(nucleo);
    const auto schedule = scheduler.schedule(chain(2), {});
    EXPECT_NE(schedule.entry_for("t0"), nullptr);
    EXPECT_EQ(schedule.entry_for("zzz"), nullptr);
}

TEST(Runtime, UnknownTaskInScheduleThrows) {
    coordination::Schedule schedule;
    coordination::ScheduleEntry entry;
    entry.task = "ghost";
    entry.finish_s = 0.01;
    schedule.entries.push_back(entry);
    const TaskGraph graph = chain(1);
    EXPECT_THROW(
        (void)coordination::execute_schedule(graph, schedule, {}),
        std::runtime_error);
}

TEST(Runtime, DependencyOrderViolationThrows) {
    // Schedule listing the dependent before its producer, with start times
    // that sort it first.
    TaskGraph graph = chain(2);
    coordination::Schedule schedule;
    coordination::ScheduleEntry late;
    late.task = "t1";  // depends on t0
    late.start_s = 0.0;
    late.finish_s = 0.01;
    late.core = 0;
    schedule.entries.push_back(late);
    coordination::ScheduleEntry early;
    early.task = "t0";
    early.start_s = 0.02;
    early.finish_s = 0.03;
    early.core = 0;
    schedule.entries.push_back(early);
    EXPECT_THROW(
        (void)coordination::execute_schedule(graph, schedule, {}),
        std::runtime_error);
}

TEST(Runtime, SuccessRatioBoundsAndMonotonicity) {
    const auto nucleo = platform::nucleo_f091();
    const coordination::Scheduler scheduler(nucleo);
    const auto graph = chain(3);
    const auto schedule = scheduler.schedule(graph, {});

    coordination::RuntimeOptions options;
    options.jitter_sigma = 0.2;
    options.deadline_s = schedule.makespan_s;  // zero headroom
    const double tight =
        coordination::deadline_success_ratio(graph, schedule, options, 100);
    options.deadline_s = schedule.makespan_s * 10.0;
    const double loose =
        coordination::deadline_success_ratio(graph, schedule, options, 100);
    EXPECT_GE(tight, 0.0);
    EXPECT_LE(tight, 1.0);
    EXPECT_GE(loose, tight);
    EXPECT_NEAR(loose, 1.0, 1e-12);
}

TEST(Rta, SingleTaskAlwaysSchedulableUpToDeadline) {
    for (double wcet = 0.001; wcet < 0.01; wcet += 0.002) {
        const coordination::PeriodicTask task{"t", wcet, 0.01, 0.01};
        const auto result = coordination::response_time_analysis({task});
        EXPECT_TRUE(result.schedulable);
        EXPECT_NEAR(result.response_times[0], wcet, 1e-12);
    }
}

TEST(Rta, ExactResponseTimeKnownExample) {
    // Classic example: C=(1,2,3), T=(4,10,20): R3 = 3+2*C1+1*C2 -> iterate.
    std::vector<coordination::PeriodicTask> tasks = {
        {"t1", 1.0, 4.0, 0.0},
        {"t2", 2.0, 10.0, 0.0},
        {"t3", 3.0, 20.0, 0.0},
    };
    const auto result = coordination::response_time_analysis(tasks);
    ASSERT_TRUE(result.schedulable);
    EXPECT_NEAR(result.response_times[0], 1.0, 1e-9);
    EXPECT_NEAR(result.response_times[1], 3.0, 1e-9);
    // R3: 3 + ceil(R/4)*1 + ceil(R/10)*2; fixpoint at R=10:
    // 3 + 3*1 + 1*2 = 8 -> 3 + 2 + 2 = ... converges to 8? iterate:
    // R0=3 -> 3+1+2=6 -> 3+2+2=7 -> 3+2+2=7. Fixpoint 7.
    EXPECT_NEAR(result.response_times[2], 7.0, 1e-9);
}

TEST(Glue, SanitisesAwkwardIdentifiers) {
    TaskGraph graph;
    Task task;
    task.name = "weird task-name";
    task.entry_fn = "entry.with.dots";
    task.versions[""] = {{0.01, 0.0, 0.0, 0, ""}};
    graph.tasks.push_back(task);
    const auto text = coordination::generate_glue(
        graph, {}, platform::nucleo_f091(),
        coordination::GlueStyle::kSequential);
    EXPECT_NE(text.find("entry_with_dots();"), std::string::npos);
    EXPECT_EQ(text.find("entry.with.dots();"), std::string::npos);
}

}  // namespace
