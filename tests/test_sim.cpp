// Unit tests for the machine simulator: functional semantics, cost charging,
// determinism on predictable cores, stochasticity on complex cores.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "platform/platform.hpp"
#include "sim/machine.hpp"

namespace {

using namespace teamplay;

ir::Program make_single(ir::Function fn) {
    ir::Program program;
    program.add(std::move(fn));
    return program;
}

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

TEST(Machine, ArithmeticSemantics) {
    ir::FunctionBuilder b("f", 2);
    const auto sum = b.add(b.param(0), b.param(1));
    const auto prod = b.mul(sum, b.param(0));
    b.ret(prod);
    const auto program = make_single(b.build());

    sim::Machine m(program, nucleo().cores[0], 2);
    const auto r = m.run("f", std::vector<ir::Word>{3, 4});
    EXPECT_EQ(r.ret_value, 21);  // (3+4)*3
}

TEST(Machine, DivisionByZeroYieldsZero) {
    ir::FunctionBuilder b("f", 2);
    b.ret(b.div(b.param(0), b.param(1)));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{10, 0}).ret_value, 0);
}

TEST(Machine, ShiftMasksTo63Bits) {
    ir::FunctionBuilder b("f", 2);
    b.ret(b.shl(b.param(0), b.param(1)));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{1, 64}).ret_value, 1);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{1, 3}).ret_value, 8);
}

TEST(Machine, SelectSemantics) {
    ir::FunctionBuilder b("f", 3);
    b.ret(b.select(b.param(0), b.param(1), b.param(2)));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{1, 10, 20}).ret_value, 10);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{0, 10, 20}).ret_value, 20);
}

TEST(Machine, LoopComputesSum) {
    ir::FunctionBuilder b("f", 0);
    const auto acc_addr = b.imm(100);
    const auto i = b.loop_begin(10);
    const auto acc = b.load(acc_addr);
    b.store(acc_addr, b.add(acc, i));
    b.loop_end();
    b.ret(b.load(acc_addr));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", {}).ret_value, 45);  // 0+1+...+9
}

TEST(Machine, DynamicLoopReadsTripFromRegister) {
    ir::FunctionBuilder b("f", 1);
    const auto acc_addr = b.imm(0);
    const auto i = b.dynamic_loop_begin(b.param(0), 100);
    const auto acc = b.load(acc_addr);
    b.store(acc_addr, b.add(acc, b.add_imm(i, 1)));
    b.loop_end();
    b.ret(b.load(acc_addr));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{4}).ret_value, 10);  // 1+2+3+4
}

TEST(Machine, DynamicLoopAboveBoundThrows) {
    ir::FunctionBuilder b("f", 1);
    (void)b.dynamic_loop_begin(b.param(0), 8);
    b.loop_end();
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_THROW(m.run("f", std::vector<ir::Word>{9}), std::runtime_error);
}

TEST(Machine, IfTakesCorrectBranch) {
    ir::FunctionBuilder b("f", 1);
    const auto out = b.imm(0);
    const auto cond = b.cmp_gt(b.param(0), b.imm(5));
    const auto addr = b.imm(10);
    b.store(addr, out);
    b.if_begin(cond);
    b.store(addr, b.imm(111));
    b.if_else();
    b.store(addr, b.imm(222));
    b.if_end();
    b.ret(b.load(addr));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{9}).ret_value, 111);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{1}).ret_value, 222);
}

TEST(Machine, CallPassesArgsAndReturns) {
    ir::FunctionBuilder leaf("square", 1);
    leaf.ret(leaf.mul(leaf.param(0), leaf.param(0)));
    ir::FunctionBuilder main_fn("main", 1);
    const auto r = main_fn.call("square", {main_fn.param(0)});
    main_fn.ret(main_fn.add_imm(r, 1));
    ir::Program program;
    program.add(leaf.build());
    program.add(main_fn.build());

    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("main", std::vector<ir::Word>{6}).ret_value, 37);
}

TEST(Machine, SharedMemoryAcrossCalls) {
    ir::FunctionBuilder writer("writer", 0);
    writer.store(writer.imm(5), writer.imm(77));
    ir::FunctionBuilder main_fn("main", 0);
    (void)main_fn.call("writer", {});
    main_fn.ret(main_fn.load(main_fn.imm(5)));
    ir::Program program;
    program.add(writer.build());
    program.add(main_fn.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("main", {}).ret_value, 77);
}

TEST(Machine, OutOfBoundsAccessThrows) {
    ir::FunctionBuilder b("f", 0);
    (void)b.load(b.imm(static_cast<ir::Word>(1) << 40));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_THROW(m.run("f", {}), std::out_of_range);
}

TEST(Machine, UndefinedFunctionThrows) {
    ir::Program program;
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_THROW(m.run("nope", {}), std::runtime_error);
}

TEST(Machine, ArgumentCountMismatchThrows) {
    ir::FunctionBuilder b("f", 2);
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_THROW(m.run("f", std::vector<ir::Word>{1}), std::invalid_argument);
}

TEST(Machine, InstructionBudgetAborts) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(1000000);
    (void)b.add(i, i);
    b.loop_end();
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    m.set_instruction_budget(1000);
    EXPECT_THROW(m.run("f", {}), std::runtime_error);
}

TEST(Machine, PredictableCoreIsCycleDeterministic) {
    ir::FunctionBuilder b("f", 1);
    const auto i = b.loop_begin(50);
    (void)b.mul(i, b.param(0));
    b.loop_end();
    const auto program = make_single(b.build());

    sim::Machine m1(program, nucleo().cores[0], 1, /*seed=*/1);
    sim::Machine m2(program, nucleo().cores[0], 1, /*seed=*/999);
    const auto r1 = m1.run("f", std::vector<ir::Word>{3});
    const auto r2 = m2.run("f", std::vector<ir::Word>{3});
    EXPECT_DOUBLE_EQ(r1.cycles, r2.cycles);
    EXPECT_DOUBLE_EQ(r1.dynamic_energy_j, r2.dynamic_energy_j);
}

TEST(Machine, ComplexCoreShowsTimingVariance) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(200);
    const auto addr = b.and_imm(i, 255);
    (void)b.load(addr);
    b.loop_end();
    const auto program = make_single(b.build());

    const auto tk1 = platform::apalis_tk1();
    sim::Machine m1(program, tk1.cores[0], 0, /*seed=*/1);
    sim::Machine m2(program, tk1.cores[0], 0, /*seed=*/2);
    const auto r1 = m1.run("f", {});
    const auto r2 = m2.run("f", {});
    EXPECT_NE(r1.cycles, r2.cycles);
}

TEST(Machine, HigherFrequencyIsFasterButCostsMoreDynamicEnergy) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(100);
    (void)b.add(i, i);
    b.loop_end();
    const auto program = make_single(b.build());

    sim::Machine slow(program, nucleo().cores[0], 0);
    sim::Machine fast(program, nucleo().cores[0], 2);
    const auto rs = slow.run("f", {});
    const auto rf = fast.run("f", {});
    EXPECT_GT(rs.time_s, rf.time_s);
    // Same cycle count; dynamic energy scales with V^2 so the faster (higher
    // voltage) point spends more dynamic energy.
    EXPECT_DOUBLE_EQ(rs.cycles, rf.cycles);
    EXPECT_LT(rs.dynamic_energy_j, rf.dynamic_energy_j);
}

TEST(Machine, PowerTraceRecordedOnDemand) {
    ir::FunctionBuilder b("f", 0);
    (void)b.imm(255);
    (void)b.imm(0);
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    const auto quiet = m.run("f", {});
    EXPECT_TRUE(quiet.power_trace.empty());
    const auto traced = m.run("f", {}, /*record_trace=*/true);
    EXPECT_EQ(traced.power_trace.size(), 2u);
    // Hamming-weight data dependence: storing 0xFF draws more power than 0.
    EXPECT_GT(traced.power_trace[0], traced.power_trace[1]);
}

TEST(Machine, ClassCountsTallyExecutedInstructions) {
    ir::FunctionBuilder b("f", 0);
    (void)b.mul(b.imm(3), b.imm(4));
    b.store(b.imm(9), b.imm(5));
    const auto program = make_single(b.build());
    sim::Machine m(program, nucleo().cores[0], 0);
    const auto r = m.run("f", {});
    EXPECT_EQ(
        r.class_counts[static_cast<std::size_t>(isa::InstrClass::kMul)], 1);
    EXPECT_EQ(
        r.class_counts[static_cast<std::size_t>(isa::InstrClass::kStore)], 1);
    EXPECT_EQ(
        r.class_counts[static_cast<std::size_t>(isa::InstrClass::kMove)], 4);
}

TEST(Machine, PokePeekRoundTrip) {
    ir::Program program;
    program.memory_words = 128;
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(17, -42);
    EXPECT_EQ(m.peek(17), -42);
    m.poke_span(10, std::vector<ir::Word>{1, 2, 3});
    const auto span = m.peek_span(10, 3);
    EXPECT_EQ(span, (std::vector<ir::Word>{1, 2, 3}));
    m.clear_memory();
    EXPECT_EQ(m.peek(17), 0);
    EXPECT_THROW(m.poke(1000, 1), std::out_of_range);
}

TEST(Platform, PredictabilityClassification) {
    EXPECT_TRUE(platform::nucleo_f091().predictable());
    EXPECT_TRUE(platform::gr712rc().predictable());
    EXPECT_TRUE(platform::camera_pill_board().predictable());
    EXPECT_FALSE(platform::apalis_tk1().predictable());
    EXPECT_FALSE(platform::jetson_tx2().predictable());
    EXPECT_FALSE(platform::jetson_nano().predictable());
}

TEST(Platform, ByNameRoundTrip) {
    for (const auto* name :
         {"nucleo-f091", "camera-pill", "gr712rc", "apalis-tk1", "jetson-tx2",
          "jetson-nano"}) {
        EXPECT_EQ(platform::by_name(name).name, name);
    }
    EXPECT_THROW(platform::by_name("pdp11"), std::invalid_argument);
}

TEST(Platform, CoresOfClassFiltersAndEmptyMatchesAll) {
    const auto tx2 = platform::jetson_tx2();
    EXPECT_EQ(tx2.cores_of_class("big").size(), 2u);
    EXPECT_EQ(tx2.cores_of_class("little").size(), 4u);
    EXPECT_EQ(tx2.cores_of_class("gpu").size(), 1u);
    EXPECT_EQ(tx2.cores_of_class("").size(), tx2.cores.size());
}

}  // namespace
