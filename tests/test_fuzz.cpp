// Fixed-seed generative fuzzing suite (DESIGN.md §13): the tier-1 face of
// the fuzz/ subsystem.  The CI sweep explores fresh seeds every run; this
// suite pins a fixed seed block so the obligations themselves are
// regression-tested deterministically:
//   * the generator is a pure function of (seed, config) and everything it
//     emits is valid by construction;
//   * >= 200 generated scenarios cross every differential-oracle tier
//     byte-identically (a small subset also crosses the net/loopback tier);
//   * every semantic mutation preserves entry fingerprints and, through one
//     shared engine's fingerprint-keyed cache, the exact report bytes;
//   * every invalidity injection is rejected by ir::validate;
//   * replay records round-trip through their one-line format and the
//     append-only log file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/scenario_engine.hpp"
#include "core/wire.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/replay.hpp"
#include "ir/fingerprint.hpp"
#include "ir/validate.hpp"
#include "support/rng.hpp"

namespace {

using namespace teamplay;

// The pinned seed block.  Chosen once, arbitrarily; any block works, this
// one stays fixed so failures are comparable across commits.
constexpr std::uint64_t kBaseSeed = 0xF002BA5E00000000ull;

std::vector<std::uint64_t> entry_fingerprints(
    const ir::Program& program, const std::vector<std::string>& entries) {
    std::vector<std::uint64_t> prints;
    prints.reserve(entries.size());
    for (const auto& entry : entries)
        prints.push_back(ir::structural_fingerprint(program, entry));
    return prints;
}

TEST(FuzzGenerator, PureFunctionOfSeed) {
    const fuzz::ProgramGenerator a;
    const fuzz::ProgramGenerator b;
    for (std::uint64_t offset = 0; offset < 16; ++offset) {
        const auto seed = kBaseSeed + offset;
        const auto first = a.scenario(seed);
        const auto second = b.scenario(seed);
        EXPECT_EQ(first.name, second.name);
        EXPECT_EQ(first.csl_source, second.csl_source);
        EXPECT_EQ(first.entries, second.entries);
        EXPECT_EQ(first.platform.name, second.platform.name);
        // The request encoding covers the whole program plus platform and
        // options, so byte-equality here is program-deep determinism.
        const auto options = fuzz::fuzz_workflow_options();
        EXPECT_EQ(core::wire::encode(fuzz::scenario_request(
                      first, first.program, options)),
                  core::wire::encode(fuzz::scenario_request(
                      second, second.program, options)))
            << "seed 0x" << std::hex << seed;
    }
}

TEST(FuzzGenerator, ValidByConstruction) {
    const fuzz::ProgramGenerator generator;
    std::set<std::string> platforms;
    for (std::uint64_t offset = 0; offset < 256; ++offset) {
        const auto scenario = generator.scenario(kBaseSeed + offset);
        const auto errors = ir::validate(scenario.program);
        EXPECT_TRUE(errors.empty())
            << "seed 0x" << std::hex << scenario.seed << ": "
            << errors.front();
        ASSERT_FALSE(scenario.entries.empty());
        for (const auto& entry : scenario.entries)
            EXPECT_NE(scenario.program.find(entry), nullptr) << entry;
        EXPECT_FALSE(scenario.csl_source.empty());
        platforms.insert(scenario.platform.name);
    }
    // The platform draw must actually vary — a constant platform would
    // silently shrink oracle coverage to one board model.
    EXPECT_GT(platforms.size(), 1u);
}

// The headline obligation: >= 200 generated scenarios, every execution
// tier byte-identical to the reference.  Any failure prints the replay
// line and the exact repro command, same as the CI sweep.
TEST(FuzzOracle, TwoHundredScenariosAllTiersByteIdentical) {
    const fuzz::ProgramGenerator generator;
    const fuzz::DifferentialOracle oracle;
    for (std::uint64_t offset = 0; offset < 200; ++offset) {
        const auto seed = kBaseSeed + offset;
        const auto scenario = generator.scenario(seed);
        const auto result = oracle.check(scenario);
        EXPECT_GE(result.tiers.size(), 5u);
        if (!result.ok()) {
            fuzz::ReplayRecord record;
            record.seed = seed;
            record.status = "divergence";
            record.detail = result.divergence->to_string();
            FAIL() << fuzz::format_record(record) << "\n  repro: "
                   << fuzz::repro_command(seed, /*loopback=*/false);
        }
    }
}

// A small subset also crosses a real TCP hop (ShardServer + RemoteShard on
// 127.0.0.1): the wire framing and the remote execution path must not
// perturb a single report byte either.
TEST(FuzzOracle, LoopbackSubsetByteIdentical) {
    const fuzz::ProgramGenerator generator;
    fuzz::OracleConfig config;
    config.loopback = true;
    const fuzz::DifferentialOracle oracle(config);
    for (std::uint64_t offset = 0; offset < 3; ++offset) {
        const auto seed = kBaseSeed + offset;
        const auto result = oracle.check(generator.scenario(seed));
        EXPECT_NE(std::find(result.tiers.begin(), result.tiers.end(),
                            "net/loopback"),
                  result.tiers.end());
        EXPECT_TRUE(result.ok())
            << result.divergence->to_string() << "\n  repro: "
            << fuzz::repro_command(seed, /*loopback=*/true);
    }
}

// Semantic mutants: the program text changes, the meaning does not.  The
// entry fingerprints must hold, and running original then mutant through
// ONE engine must reproduce the baseline report byte-for-byte via the
// fingerprint-keyed evaluation cache (fuzz::scenario_request documents why
// a fresh engine per run is NOT the contract).
TEST(FuzzMutator, SemanticMutationsPreserveFingerprintAndReportBytes) {
    const fuzz::ProgramGenerator generator;
    const auto options = fuzz::fuzz_workflow_options();
    std::size_t applied = 0;
    for (std::uint64_t offset = 0; offset < 24; ++offset) {
        const auto seed = kBaseSeed + offset;
        const auto scenario = generator.scenario(seed);
        const auto prints =
            entry_fingerprints(scenario.program, scenario.entries);
        core::ScenarioEngine engine;
        const auto baseline = fuzz::canonical_bytes(engine.run(
            fuzz::scenario_request(scenario, scenario.program, options)));
        support::Rng rng(seed ^ 0x5EED5EED5EED5EEDull);
        for (std::size_t m = 0; m < fuzz::kNumSemanticMutations; ++m) {
            const auto mutation = static_cast<fuzz::SemanticMutation>(m);
            ir::Program mutant = scenario.program;
            if (!fuzz::apply_semantic(mutant, scenario.entries.front(),
                                      mutation, rng))
                continue;
            ++applied;
            EXPECT_TRUE(ir::validate(mutant).empty())
                << fuzz::name(mutation) << " seed 0x" << std::hex << seed;
            EXPECT_EQ(entry_fingerprints(mutant, scenario.entries), prints)
                << fuzz::name(mutation) << " moved a fingerprint, seed 0x"
                << std::hex << seed;
            EXPECT_EQ(fuzz::canonical_bytes(engine.run(
                          fuzz::scenario_request(scenario, mutant, options))),
                      baseline)
                << fuzz::name(mutation) << " moved report bytes, seed 0x"
                << std::hex << seed;
        }
    }
    // The suite is vacuous if mutations never find a site.
    EXPECT_GE(applied, 24u * 2);
}

// Invalid mutants: every injection class must be rejected, for every seed
// it applies to.  (tests/test_validate.cpp pins the classes one by one on
// hand-built programs; this closes the loop on generated ones.)
TEST(FuzzMutator, InvalidMutationsAllRejected) {
    const fuzz::ProgramGenerator generator;
    std::size_t applied = 0;
    for (std::uint64_t offset = 0; offset < 32; ++offset) {
        const auto seed = kBaseSeed + offset;
        const auto scenario = generator.scenario(seed);
        support::Rng rng(seed ^ 0xBAD5EED0BAD5EED0ull);
        for (std::size_t m = 0; m < fuzz::kNumInvalidMutations; ++m) {
            const auto mutation = static_cast<fuzz::InvalidMutation>(m);
            ir::Program mutant = scenario.program;
            if (!fuzz::inject_invalid(mutant, mutation, rng)) continue;
            ++applied;
            EXPECT_FALSE(ir::validate(mutant).empty())
                << fuzz::name(mutation) << " accepted, seed 0x" << std::hex
                << seed;
        }
    }
    // Nearly every injection synthesises its own site; a low count means
    // the injector itself regressed.
    EXPECT_GE(applied, 32u * (fuzz::kNumInvalidMutations - 2));
}

TEST(FuzzReplay, FormatParseRoundTrip) {
    fuzz::ReplayRecord record;
    record.seed = 0x00000000DEADBEEFull;
    record.status = "divergence";
    record.detail = "tier=sim/trace byte_offset=17";
    const auto line = fuzz::format_record(record);
    EXPECT_EQ(line.rfind("FUZZ-REPLAY ", 0), 0u) << line;
    const auto parsed = fuzz::parse_record(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seed, record.seed);
    EXPECT_EQ(parsed->status, record.status);
    EXPECT_EQ(parsed->detail, record.detail);
    EXPECT_TRUE(parsed->failed());

    // Newlines in the detail must flatten: the log stays one line a record.
    record.detail = "first\nsecond";
    const auto flattened = fuzz::format_record(record);
    EXPECT_EQ(flattened.find('\n'), std::string::npos);

    // Non-record lines grep clean.
    EXPECT_FALSE(fuzz::parse_record("random stderr chatter").has_value());
    EXPECT_FALSE(fuzz::parse_record("").has_value());

    EXPECT_NE(fuzz::repro_command(record.seed, false).find("deadbeef"),
              std::string::npos);
    EXPECT_NE(fuzz::repro_command(record.seed, true).find("--loopback"),
              std::string::npos);
}

TEST(FuzzReplay, LogFileSurvivesAndReloads) {
    const std::string path =
        ::testing::TempDir() + "fuzz_replay_test.log";
    std::remove(path.c_str());
    {
        fuzz::ReplayLog log(path);
        fuzz::ReplayRecord ok;
        ok.seed = 1;
        ok.status = "ok";
        ok.detail = "tiers=6";
        log.append(ok);
        fuzz::ReplayRecord bad;
        bad.seed = 2;
        bad.status = "invalid-accepted";
        bad.detail = "mutation=recursion";
        log.append(bad);
        EXPECT_EQ(log.records().size(), 2u);
        EXPECT_EQ(log.failures(), 1u);
    }
    // Each append is an open-append-close, so the file is complete even
    // though the log object is gone (a crashed sweep leaves every line).
    const auto loaded = fuzz::load_replay_log(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].seed, 1u);
    EXPECT_EQ(loaded[0].status, "ok");
    EXPECT_EQ(loaded[1].seed, 2u);
    EXPECT_EQ(loaded[1].detail, "mutation=recursion");
    std::remove(path.c_str());
}

}  // namespace
