// Tests for the ETS refactoring advisor (the paper's future-work extension).
#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

core::ToolchainReport pill_report() {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 8;
    options.compiler.iterations = 8;
    return workflow.run(spec, options);
}

TEST(Advisor, GreenReportProducesOnlyOptimisationHints) {
    const auto report = pill_report();
    ASSERT_TRUE(report.certificate.all_hold());
    const auto advice = core::advise(report);
    for (const auto& item : advice)
        EXPECT_NE(item.kind, core::AdviceKind::kBrokenBudget);
}

TEST(Advisor, SortedByImpactDescending) {
    const auto advice = core::advise(pill_report());
    for (std::size_t i = 1; i < advice.size(); ++i)
        EXPECT_GE(advice[i - 1].impact, advice[i].impact);
}

TEST(Advisor, DetectsBrokenBudget) {
    auto report = pill_report();
    // Force a violation.
    ASSERT_FALSE(report.certificate.results.empty());
    auto& result = report.certificate.results.front();
    result.holds = false;
    result.analysed = result.budget * 2.0;
    const auto advice = core::advise(report);
    bool broken = false;
    for (const auto& item : advice)
        broken |= item.kind == core::AdviceKind::kBrokenBudget;
    EXPECT_TRUE(broken);
    // Violations sort first (impact 1.0).
    ASSERT_FALSE(advice.empty());
    EXPECT_EQ(advice.front().kind, core::AdviceKind::kBrokenBudget);
}

TEST(Advisor, DetectsTightBudget) {
    auto report = pill_report();
    auto& result = report.certificate.results.front();
    result.budget = result.analysed * 1.05;  // 5% headroom
    const auto advice = core::advise(report);
    bool tight = false;
    for (const auto& item : advice)
        tight |= item.kind == core::AdviceKind::kTightBudget &&
                 item.task == result.poi;
    EXPECT_TRUE(tight);
}

TEST(Advisor, FlagsMeasuredEvidenceOnComplexFlow) {
    const auto app = usecases::make_uav_app();
    const auto spec = csl::parse(app.csl_source);
    core::ComplexWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.profile_runs = 6;
    const auto report = workflow.run(spec, options);
    const auto advice = core::advise(report);
    bool measured = false;
    for (const auto& item : advice)
        measured |= item.kind == core::AdviceKind::kMeasuredEvidence;
    EXPECT_TRUE(measured);
}

TEST(Advisor, RenderIncludesEveryFinding) {
    const auto advice = core::advise(pill_report());
    const auto text = core::render_advice(advice);
    if (advice.empty()) {
        EXPECT_NE(text.find("no findings"), std::string::npos);
    } else {
        EXPECT_NE(text.find("finding(s)"), std::string::npos);
        for (const auto& item : advice)
            EXPECT_NE(text.find(item.message), std::string::npos);
    }
}

TEST(Advisor, EmptyAdviceRendering) {
    EXPECT_NE(core::render_advice({}).find("no findings"),
              std::string::npos);
}

}  // namespace
