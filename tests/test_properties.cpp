// Property-based sweeps over randomly generated programs and task graphs.
//
// These are the repository's strongest correctness guarantees:
//  * every compiler pass pipeline preserves program semantics (differential
//    execution against the untransformed program, memory included);
//  * static WCET/WCEC bounds stay sound across every pass pipeline;
//  * security transforms preserve semantics and kill the timing channel on
//    arbitrary secret-dependent kernels;
//  * schedules never overlap on a core, never start before dependencies,
//    and the runtime replay agrees.
#include <gtest/gtest.h>

#include "compiler/multi_criteria.hpp"
#include "compiler/passes.hpp"
#include "coordination/runtime.hpp"
#include "coordination/scheduler.hpp"
#include "energy/analyser.hpp"
#include "ir/builder.hpp"
#include "ir/validate.hpp"
#include "security/leakage.hpp"
#include "security/transforms.hpp"
#include "sim/machine.hpp"
#include "wcet/analyser.hpp"

namespace {

using namespace teamplay;

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

// -- random structured program generator --------------------------------------

/// Emits a random but well-formed function: nested loops/branches over a
/// small memory region, loop-carried state through both memory and
/// registers, calls into a shared helper.
ir::Program random_program(support::Rng& rng, bool with_calls) {
    ir::Program program;
    program.memory_words = 512;

    if (with_calls) {
        ir::FunctionBuilder helper("helper", 2);
        const auto t = helper.mul(helper.param(0), helper.param(1));
        helper.ret(helper.add_imm(t, 13));
        program.add(helper.build());
    }

    ir::FunctionBuilder b("f", 2);
    const auto acc = b.mov(b.imm(1));
    const int outer_blocks = static_cast<int>(rng.range(1, 3));
    for (int ob = 0; ob < outer_blocks; ++ob) {
        const auto trip = rng.range(2, 10);
        const auto i = b.loop_begin(trip * 2, trip * 2);
        // Mixed arithmetic with in-loop constants (LICM fodder).
        auto v = b.add(b.mul_imm(i, 7), b.param(0));
        v = b.bxor(v, b.shr_imm(v, 3));
        if (rng.chance(0.7)) {
            const auto c = b.cmp_lt(v, b.param(1));
            b.if_begin(c);
            {
                const auto addr = b.and_imm(v, 255);
                b.store(addr, b.add(v, i));
            }
            if (rng.chance(0.5)) {
                b.if_else();
                const auto addr = b.and_imm(b.add(v, i), 255);
                (void)b.load(addr);
            }
            b.if_end();
        }
        if (rng.chance(0.5)) {
            // Register-carried accumulator (tests unroll correctness).
            b.assign(acc, b.add(acc, b.band(v, b.imm(1023))));
        } else {
            // Memory-carried accumulator.
            const auto cell = b.imm(300 + ob);
            b.store(cell, b.add(b.load(cell), v));
        }
        if (with_calls && rng.chance(0.5)) {
            const auto r = b.call("helper", {i, v});
            b.assign(acc, b.bxor(acc, r));
        }
        if (rng.chance(0.4)) {
            const auto j = b.loop_begin(rng.range(2, 6));
            b.store(b.and_imm(b.add(i, j), 127), j);
            b.loop_end();
        }
        b.loop_end();
    }
    b.ret(acc);
    program.add(b.build());
    return program;
}

struct Observation {
    ir::Word ret = 0;
    std::vector<ir::Word> memory;
};

Observation observe(const ir::Program& program, const std::string& fn,
                    std::span<const ir::Word> args,
                    std::span<const ir::Word> memory_image) {
    sim::Machine machine(program, nucleo().cores[0], 0);
    machine.poke_span(0, memory_image);
    Observation result;
    result.ret = machine.run(fn, args).ret_value;
    result.memory = machine.peek_span(0, 400);
    return result;
}

class PassPipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PassPipelineProperty, FullPipelinePreservesSemantics) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
    const auto before = random_program(rng, /*with_calls=*/true);
    ASSERT_TRUE(ir::validate(before).empty());

    // Random pass configuration (always ends with DCE).
    const compiler::MultiCriteriaCompiler mcc(before, nucleo().cores[0]);
    compiler::Genome genome(compiler::kGenomeDims);
    for (auto& g : genome) g = rng.uniform();
    auto config = mcc.decode(genome, /*explore_security=*/false);
    config.opp_index = 0;
    const auto version = mcc.compile("f", config);
    ASSERT_TRUE(ir::validate(*version.program).empty())
        << "pipeline produced invalid IR for " << config.label();

    // Differential execution on several inputs and memory images.
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<ir::Word> args = {rng.range(-200, 200),
                                      rng.range(-200, 200)};
        std::vector<ir::Word> image(400);
        for (auto& w : image) w = rng.range(-50, 50);
        const auto o1 = observe(before, "f", args, image);
        const auto o2 = observe(*version.program, "f", args, image);
        ASSERT_EQ(o1.ret, o2.ret) << "config " << config.label();
        ASSERT_EQ(o1.memory, o2.memory) << "config " << config.label();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PassPipelineProperty,
                         ::testing::Range(0, 30));

class BoundSoundnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundSoundnessProperty, WcetAndWcecBoundsSurviveTransformation) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    const auto program = random_program(rng, /*with_calls=*/true);

    const compiler::MultiCriteriaCompiler mcc(program, nucleo().cores[0]);
    compiler::Genome genome(compiler::kGenomeDims);
    for (auto& g : genome) g = rng.uniform();
    auto config = mcc.decode(genome, false);
    config.opp_index = 1;
    const auto version = mcc.compile("f", config);
    ASSERT_TRUE(version.analysable);

    sim::Machine machine(*version.program, nucleo().cores[0], 1);
    for (int trial = 0; trial < 4; ++trial) {
        machine.clear_memory();
        std::vector<ir::Word> args = {rng.range(-100, 100),
                                      rng.range(-100, 100)};
        const auto run = machine.run("f", args);
        EXPECT_LE(run.time_s, version.wcet_s * (1.0 + 1e-9))
            << "WCET bound violated after " << config.label();
        EXPECT_LE(run.energy_j(), version.wcec_j * (1.0 + 1e-9))
            << "WCEC bound violated after " << config.label();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, BoundSoundnessProperty,
                         ::testing::Range(0, 25));

// -- security transform properties ------------------------------------------------

/// Random secret-dependent kernel with pure branch arms.
ir::Program random_secret_kernel(support::Rng& rng) {
    ir::FunctionBuilder b("k", 1);
    const auto key = b.secret(b.param(0));
    const auto acc = b.mov(b.imm(3));
    const auto bits = rng.range(4, 8);
    const auto i = b.loop_begin(bits);
    const auto bit = b.band(b.shr(key, i), b.imm(1));
    const auto mixed = b.bxor(acc, b.mul_imm(acc, 5));
    b.if_begin(bit);
    {
        auto v = b.add(mixed, b.imm(rng.range(1, 50)));
        if (rng.chance(0.5)) v = b.mul(v, b.imm(3));
        b.assign(acc, v);
    }
    b.if_else();
    {
        auto v = b.sub(mixed, b.imm(rng.range(1, 20)));
        b.assign(acc, v);
    }
    b.if_end();
    b.loop_end();
    b.ret(b.band(acc, b.imm(0xFFFF)));
    ir::Program program;
    program.add(b.build());
    return program;
}

class SecurityTransformProperty : public ::testing::TestWithParam<int> {};

TEST_P(SecurityTransformProperty, LadderisePreservesAndFlattens) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 7);
    const auto before = random_secret_kernel(rng);
    auto after = before;
    const auto stats = security::ladderise(after, *after.find("k"));
    ASSERT_GE(stats.rewritten, 1);
    EXPECT_EQ(stats.skipped, 0);

    // Semantics identical for every secret in the space.
    sim::Machine m0(before, nucleo().cores[0], 0);
    sim::Machine m1(after, nucleo().cores[0], 0);
    for (ir::Word secret = 0; secret < 64; ++secret) {
        ASSERT_EQ(m0.run("k", std::vector<ir::Word>{secret}).ret_value,
                  m1.run("k", std::vector<ir::Word>{secret}).ret_value)
            << "diverged at secret " << secret;
    }

    // Timing channel eliminated: identical cycle count for all secrets.
    const auto cycles_of = [&after](ir::Word secret) {
        sim::Machine machine(after, nucleo().cores[0], 0);
        return machine.run("k", std::vector<ir::Word>{secret}).cycles;
    };
    const double reference = cycles_of(0);
    for (ir::Word secret = 1; secret < 32; ++secret)
        ASSERT_DOUBLE_EQ(cycles_of(secret), reference);
}

TEST_P(SecurityTransformProperty, BalancePreservesAndFlattens) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 999331 + 17);
    const auto before = random_secret_kernel(rng);
    auto after = before;
    const auto stats =
        security::balance_secret_branches(after, *after.find("k"));
    ASSERT_GE(stats.rewritten, 1);

    sim::Machine m0(before, nucleo().cores[0], 0);
    sim::Machine m1(after, nucleo().cores[0], 0);
    double reference = -1.0;
    for (ir::Word secret = 0; secret < 64; ++secret) {
        const auto r0 = m0.run("k", std::vector<ir::Word>{secret});
        const auto r1 = m1.run("k", std::vector<ir::Word>{secret});
        ASSERT_EQ(r0.ret_value, r1.ret_value);
        if (reference < 0.0) reference = r1.cycles;
        ASSERT_DOUBLE_EQ(r1.cycles, reference)
            << "balanced timing varies at secret " << secret;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomKernels, SecurityTransformProperty,
                         ::testing::Range(0, 15));

// -- scheduler invariants ------------------------------------------------------------

coordination::TaskGraph random_graph(support::Rng& rng, int n) {
    coordination::TaskGraph graph;
    graph.app_name = "prop";
    for (int i = 0; i < n; ++i) {
        coordination::Task task;
        task.name = "t" + std::to_string(i);
        task.entry_fn = task.name;
        if (i > 0)
            for (int d = 0; d < 2; ++d)
                if (rng.chance(0.5))
                    task.deps.push_back("t" + std::to_string(rng.below(
                                            static_cast<std::uint64_t>(i))));
        std::sort(task.deps.begin(), task.deps.end());
        task.deps.erase(std::unique(task.deps.begin(), task.deps.end()),
                        task.deps.end());
        const int versions = static_cast<int>(rng.range(1, 3));
        for (int v = 0; v < versions; ++v) {
            coordination::VersionChoice choice;
            choice.time_s = rng.uniform(0.001, 0.02);
            choice.energy_j = rng.uniform(0.0001, 0.002);
            choice.opp_index = rng.below(3);
            task.versions[""].push_back(choice);
        }
        graph.tasks.push_back(std::move(task));
    }
    return graph;
}

class SchedulerInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerInvariants, NoOverlapDepsRespectedReplayAgrees) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 29);
    const auto graph = random_graph(rng, static_cast<int>(rng.range(4, 14)));
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);

    for (const auto objective :
         {coordination::Scheduler::Objective::kMakespan,
          coordination::Scheduler::Objective::kEnergy}) {
        coordination::Scheduler::Options options;
        options.objective = objective;
        options.deadline_s = 10.0;
        options.anneal = objective ==
                         coordination::Scheduler::Objective::kEnergy;
        options.anneal_iterations = 50;
        const auto schedule = scheduler.schedule(graph, options);
        ASSERT_EQ(schedule.entries.size(), graph.tasks.size());

        // Invariant 1: no overlap on any core.
        for (const auto& a : schedule.entries)
            for (const auto& b : schedule.entries) {
                if (&a == &b || a.core != b.core) continue;
                const bool disjoint = a.finish_s <= b.start_s + 1e-12 ||
                                      b.finish_s <= a.start_s + 1e-12;
                ASSERT_TRUE(disjoint)
                    << a.task << " overlaps " << b.task << " on core "
                    << a.core;
            }

        // Invariant 2: starts never precede dependency finishes.
        for (const auto& entry : schedule.entries) {
            const auto* task = graph.find(entry.task);
            for (const auto& dep : task->deps) {
                const auto* dep_entry = schedule.entry_for(dep);
                ASSERT_NE(dep_entry, nullptr);
                ASSERT_GE(entry.start_s + 1e-12, dep_entry->finish_s)
                    << entry.task << " starts before " << dep;
            }
        }

        // Invariant 3: deterministic replay reproduces the makespan.
        const auto replay =
            coordination::execute_schedule(graph, schedule, {});
        ASSERT_NEAR(replay.makespan_s, schedule.makespan_s, 1e-9);

        // Invariant 4: energy accounting is monotone in the horizon.
        const double e1 = schedule.platform_energy_j(tx2, 1.0);
        const double e2 = schedule.platform_energy_j(tx2, 2.0);
        ASSERT_LT(e1, e2);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SchedulerInvariants,
                         ::testing::Range(0, 20));

// -- analyser agreement property -----------------------------------------------------

class AnalyserProofAgreement : public ::testing::TestWithParam<int> {};

TEST_P(AnalyserProofAgreement, AverageNeverExceedsWorstCase) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 5);
    const auto program = random_program(rng, true);
    const energy::Analyser analyser(program);
    const auto result = analyser.analyse("f", nucleo().cores[0], 1);
    ASSERT_TRUE(result.analysable);
    EXPECT_LE(result.avg_j, result.wcec_j * (1.0 + 1e-9));
    EXPECT_GT(result.wce_dynamic_j, 0.0);
    EXPECT_GT(result.wce_static_j, 0.0);
    EXPECT_NEAR(result.wcec_j, result.wce_dynamic_j + result.wce_static_j,
                1e-15 + result.wcec_j * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, AnalyserProofAgreement,
                         ::testing::Range(0, 15));

}  // namespace
