// Unit tests for the multi-criteria compiler: each pass preserves semantics
// (differential execution on randomised inputs) and improves its intended
// metric; the multi-objective engines produce valid Pareto fronts.
#include <gtest/gtest.h>

#include "compiler/moo.hpp"
#include "compiler/multi_criteria.hpp"
#include "compiler/passes.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "sim/machine.hpp"
#include "wcet/analyser.hpp"

namespace {

using namespace teamplay;

ir::Program single(ir::Function fn) {
    ir::Program program;
    program.add(std::move(fn));
    return program;
}

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

/// Differential execution over randomised inputs and shared memory images.
void expect_same_results(const ir::Program& before, const ir::Program& after,
                         const std::string& fn, int memory_probe = 64) {
    support::Rng rng(99);
    const int params = before.find(fn)->param_count;
    for (int trial = 0; trial < 8; ++trial) {
        sim::Machine m0(before, nucleo().cores[0], 0);
        sim::Machine m1(after, nucleo().cores[0], 0);
        std::vector<ir::Word> args;
        for (int p = 0; p < params; ++p) args.push_back(rng.range(-64, 64));
        // Seed identical memory.
        for (int a = 0; a < memory_probe; ++a) {
            const auto v = rng.range(-1000, 1000);
            m0.poke(static_cast<std::size_t>(a), v);
            m1.poke(static_cast<std::size_t>(a), v);
        }
        const auto r0 = m0.run(fn, args);
        const auto r1 = m1.run(fn, args);
        ASSERT_EQ(r0.ret_value, r1.ret_value) << "trial " << trial;
        for (int a = 0; a < memory_probe; ++a)
            ASSERT_EQ(m0.peek(static_cast<std::size_t>(a)),
                      m1.peek(static_cast<std::size_t>(a)))
                << "memory diverged at " << a;
    }
}

// -- constant folding ---------------------------------------------------------

TEST(ConstantFold, FoldsConstantChains) {
    ir::FunctionBuilder b("f", 0);
    const auto x = b.imm(6);
    const auto y = b.imm(7);
    const auto p = b.mul(x, y);
    b.ret(b.add_imm(p, 8));
    auto program = single(b.build());
    const int folded = compiler::constant_fold(*program.find("f"));
    EXPECT_GE(folded, 2);

    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", {}).ret_value, 50);
}

TEST(ConstantFold, PreservesSemanticsOnMixedCode) {
    ir::FunctionBuilder b("f", 2);
    const auto k = b.imm(10);
    const auto s = b.add(b.param(0), k);
    const auto t = b.mul(s, b.imm(3));
    const auto i = b.loop_begin(4);
    b.store(b.and_imm(i, 15), b.add(t, b.param(1)));
    b.loop_end();
    b.ret(t);
    const auto before = single(b.build());
    auto after = before;
    compiler::constant_fold(*after.find("f"));
    expect_same_results(before, after, "f");
}

TEST(ConstantFold, FoldsSelects) {
    ir::FunctionBuilder b("f", 0);
    const auto c = b.imm(1);
    const auto a = b.imm(10);
    const auto d = b.imm(20);
    b.ret(b.select(c, a, d));
    auto program = single(b.build());
    EXPECT_GE(compiler::constant_fold(*program.find("f")), 1);
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", {}).ret_value, 10);
}

// -- CSE ----------------------------------------------------------------------

TEST(Cse, ReplacesDuplicatePureComputation) {
    ir::FunctionBuilder b("f", 2);
    const auto s1 = b.add(b.param(0), b.param(1));
    const auto s2 = b.add(b.param(0), b.param(1));  // duplicate
    b.ret(b.mul(s1, s2));
    auto program = single(b.build());
    const int replaced = compiler::cse(*program.find("f"));
    EXPECT_EQ(replaced, 1);
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{3, 4}).ret_value, 49);
}

TEST(Cse, SkipsMultiplyDefinedRegisters) {
    // A register redefined in the block must not participate.
    ir::FunctionBuilder b("f", 1);
    auto fn_obj = [&]() {
        const auto v1 = b.add(b.param(0), b.param(0));
        // Manually force a redefinition pattern below after build.
        b.ret(v1);
        return b.build();
    }();
    // Insert a redefinition of param(0)'s consumer manually.
    auto& block = *fn_obj.body->children.at(0);
    ir::Instr redef = block.instrs[0];  // v1 = p0 + p0
    block.instrs.push_back(redef);      // v1 redefined identically
    ir::Instr use{};
    use.op = ir::Opcode::kAdd;
    use.dst = redef.dst;
    use.a = redef.dst;
    use.b = redef.dst;
    block.instrs.push_back(use);  // and consumed
    auto program = single(std::move(fn_obj));
    const int replaced = compiler::cse(*program.find("f"));
    EXPECT_EQ(replaced, 0);  // dst multiply-defined -> untouched
}

TEST(Cse, PreservesSemanticsOnRandomisedKernels) {
    ir::FunctionBuilder b("f", 2);
    const auto i = b.loop_begin(8);
    const auto a1 = b.mul(b.param(0), b.param(1));
    const auto a2 = b.mul(b.param(0), b.param(1));
    const auto sum = b.add(a1, a2);
    b.store(b.and_imm(i, 31), sum);
    b.loop_end();
    b.ret(b.imm(0));
    const auto before = single(b.build());
    auto after = before;
    compiler::cse(*after.find("f"));
    expect_same_results(before, after, "f");
}

// -- strength reduction ---------------------------------------------------------

TEST(StrengthReduce, MulByZeroOneAndTwo) {
    ir::FunctionBuilder b("f", 1);
    const auto zero = b.mul(b.param(0), b.imm(0));
    const auto one = b.mul(b.param(0), b.imm(1));
    const auto two = b.mul(b.param(0), b.imm(2));
    b.ret(b.add(zero, b.add(one, two)));
    auto program = single(b.build());
    const int rewritten =
        compiler::strength_reduce(*program.find("f"), nucleo().cores[0].model);
    EXPECT_GE(rewritten, 3);

    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{7}).ret_value, 21);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{-5}).ret_value, -15);
}

TEST(StrengthReduce, DivAndRemByOne) {
    ir::FunctionBuilder b("f", 1);
    const auto q = b.div(b.param(0), b.imm(1));
    const auto r = b.rem(b.param(0), b.imm(1));
    b.ret(b.add(q, r));
    auto program = single(b.build());
    EXPECT_GE(compiler::strength_reduce(*program.find("f"),
                                        nucleo().cores[0].model),
              2);
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{-9}).ret_value, -9);
}

// -- DCE ------------------------------------------------------------------------

TEST(Dce, RemovesUnreadPureInstructions) {
    ir::FunctionBuilder b("f", 1);
    (void)b.mul(b.param(0), b.param(0));  // dead
    const auto live = b.add(b.param(0), b.param(0));
    (void)b.imm(123);  // dead
    b.ret(live);
    auto program = single(b.build());
    const int removed = compiler::dce(*program.find("f"));
    EXPECT_GE(removed, 2);
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("f", std::vector<ir::Word>{4}).ret_value, 8);
}

TEST(Dce, KeepsStoresAndControlInputs) {
    ir::FunctionBuilder b("f", 1);
    const auto addr = b.imm(5);
    b.store(addr, b.param(0));
    const auto c = b.cmp_gt(b.param(0), b.imm(0));
    b.if_begin(c);
    b.store(addr, b.imm(99), 1);
    b.if_end();
    b.ret(b.load(addr));
    const auto before = single(b.build());
    auto after = before;
    compiler::dce(*after.find("f"));
    expect_same_results(before, after, "f");
}

TEST(Dce, CascadesThroughDeadChains) {
    ir::FunctionBuilder b("f", 1);
    const auto d1 = b.add(b.param(0), b.param(0));
    const auto d2 = b.mul(d1, d1);  // chain only feeding dead code
    (void)b.add(d2, d2);
    b.ret(b.param(0));
    auto program = single(b.build());
    const int removed = compiler::dce(*program.find("f"));
    EXPECT_EQ(removed, 3);
}

// -- unrolling -------------------------------------------------------------------

ir::Program memory_sum_kernel(std::int64_t n) {
    ir::FunctionBuilder b("f", 0);
    const auto acc_addr = b.imm(100);
    const auto i = b.loop_begin(n);
    const auto acc = b.load(acc_addr);
    b.store(acc_addr, b.add(acc, b.mul(i, i)));
    b.loop_end();
    b.ret(b.load(acc_addr));
    return single(b.build());
}

TEST(Unroll, PreservesSemanticsAndIndexValues) {
    const auto before = memory_sum_kernel(16);
    for (const int factor : {2, 4, 8}) {
        auto after = before;
        const int count = compiler::unroll_loops(*after.find("f"), factor);
        EXPECT_EQ(count, 1) << "factor " << factor;
        expect_same_results(before, after, "f", 128);
    }
}

TEST(Unroll, ReducesWcetOnM0) {
    const auto before = memory_sum_kernel(32);
    auto after = before;
    compiler::unroll_loops(*after.find("f"), 4);

    const wcet::Analyser wb(before);
    const wcet::Analyser wa(after);
    const auto cb = wb.analyse("f", nucleo().cores[0], 0);
    const auto ca = wa.analyse("f", nucleo().cores[0], 0);
    ASSERT_TRUE(cb.analysable && ca.analysable);
    EXPECT_LT(ca.cycles, cb.cycles);
}

TEST(Unroll, SkipsNonDivisibleTripCounts) {
    const auto program = memory_sum_kernel(10);
    auto after = program;
    EXPECT_EQ(compiler::unroll_loops(*after.find("f"), 4), 0);
}

TEST(Unroll, SkipsDynamicLoops) {
    ir::FunctionBuilder b("f", 1);
    const auto i = b.dynamic_loop_begin(b.param(0), 64);
    (void)b.add(i, i);
    b.loop_end();
    auto program = single(b.build());
    EXPECT_EQ(compiler::unroll_loops(*program.find("f"), 2), 0);
}

TEST(Unroll, RegisterCarriedLoopsReplicateCorrectly) {
    // Accumulator carried in a register across iterations: replication is
    // sequential execution, so the unrolled loop must compute the same sum.
    ir::FunctionBuilder b("f", 1);
    const auto acc = b.mov(b.imm(0));
    const auto i = b.loop_begin(8);
    b.assign(acc, b.add(acc, b.add(i, b.param(0))));
    b.loop_end();
    b.ret(acc);
    const auto before = single(b.build());
    for (const int factor : {2, 4, 8}) {
        auto after = before;
        EXPECT_EQ(compiler::unroll_loops(*after.find("f"), factor), 1);
        expect_same_results(before, after, "f");
    }
}

TEST(Unroll, SkipsLoopsWritingTheirIndexRegister) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(8);
    (void)b.add(i, i);
    b.loop_end();
    b.ret(b.imm(0));
    auto fn = b.build();
    // Corrupt: make the body overwrite the index register.
    const auto& loop = *fn.body->children.at(0);
    const ir::Reg index = loop.index_reg;
    ir::for_each_instr(*fn.body->children.at(0)->body,
                       [index](ir::Instr& instr) {
                           if (instr.op == ir::Opcode::kAdd)
                               instr.dst = index;
                       });
    auto program = single(std::move(fn));
    EXPECT_EQ(compiler::unroll_loops(*program.find("f"), 2), 0);
}

// -- LICM -------------------------------------------------------------------------

TEST(Licm, HoistsSingleDefConstantsOutOfLoops) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(16);
    const auto mask = b.imm(255);          // invariant: hoistable
    const auto v = b.band(i, mask);
    b.store(b.and_imm(v, 63), v);          // and_imm materialises 63: also hoistable
    b.loop_end();
    b.ret(b.imm(0));
    auto program = single(b.build());
    const int hoisted = compiler::hoist_loop_constants(*program.find("f"));
    EXPECT_GE(hoisted, 2);

    // The loop body no longer contains MovImm instructions.
    const auto& seq = *program.find("f")->body;
    for (const auto& child : seq.children) {
        if (child->kind != ir::NodeKind::kLoop) continue;
        ir::for_each_instr(*child->body, [](const ir::Instr& instr) {
            EXPECT_NE(instr.op, ir::Opcode::kMovImm);
        });
    }
}

TEST(Licm, PreservesSemantics) {
    ir::FunctionBuilder b("f", 1);
    const auto i = b.loop_begin(12);
    const auto scaled = b.mul_imm(b.add(i, b.param(0)), 7);
    b.store(b.and_imm(scaled, 127), scaled);
    b.loop_end();
    b.ret(b.imm(0));
    const auto before = single(b.build());
    auto after = before;
    compiler::hoist_loop_constants(*after.find("f"));
    expect_same_results(before, after, "f", 128);
}

TEST(Licm, ReducesWcetOfConstantHeavyLoops) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(64);
    const auto v = b.and_imm(b.mul_imm(i, 37), 255);
    b.store(b.and_imm(v, 63), v);
    b.loop_end();
    b.ret(b.imm(0));
    const auto before = single(b.build());
    auto after = before;
    compiler::hoist_loop_constants(*after.find("f"));
    const wcet::Analyser wb(before);
    const wcet::Analyser wa(after);
    EXPECT_LT(wa.analyse("f", nucleo().cores[0], 0).cycles,
              wb.analyse("f", nucleo().cores[0], 0).cycles);
}

TEST(Licm, ComposesWithUnrollOnCryptoLoop) {
    // The XTEA-shaped pattern: register-carried state plus in-loop constants.
    ir::FunctionBuilder b("f", 1);
    const auto v0 = b.mov(b.param(0));
    const auto i = b.loop_begin(32);
    const auto mixed = b.bxor(b.and_imm(b.shl_imm(v0, 4), 0xFFFFFFFF),
                              b.shr_imm(v0, 5));
    b.assign(v0, b.and_imm(b.add(mixed, i), 0xFFFFFFFF));
    b.loop_end();
    b.ret(v0);
    const auto before = single(b.build());

    auto after = before;
    compiler::hoist_loop_constants(*after.find("f"));
    EXPECT_EQ(compiler::unroll_loops(*after.find("f"), 8), 1);
    expect_same_results(before, after, "f");

    const wcet::Analyser wb(before);
    const wcet::Analyser wa(after);
    const double cycles_before = wb.analyse("f", nucleo().cores[0], 0).cycles;
    const double cycles_after = wa.analyse("f", nucleo().cores[0], 0).cycles;
    // The combination should buy a double-digit percentage.
    EXPECT_LT(cycles_after, 0.9 * cycles_before);
}

TEST(Unroll, OnlyInnermostLoopsUnrolled) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(4);
    const auto j = b.loop_begin(8);
    b.store(b.and_imm(b.add(i, j), 63), j);
    b.loop_end();
    b.loop_end();
    b.ret(b.imm(0));
    auto program = single(b.build());
    const int count = compiler::unroll_loops(*program.find("f"), 2);
    EXPECT_EQ(count, 1);  // inner only
}

// -- inlining --------------------------------------------------------------------

TEST(Inline, ReplacesCallAndPreservesSemantics) {
    ir::FunctionBuilder leaf("leaf", 2);
    leaf.ret(leaf.mul(leaf.add(leaf.param(0), leaf.param(1)), leaf.param(0)));
    ir::FunctionBuilder main_fn("main", 2);
    const auto r = main_fn.call("leaf", {main_fn.param(0), main_fn.param(1)});
    main_fn.ret(main_fn.add_imm(r, 5));
    ir::Program before;
    before.add(leaf.build());
    before.add(main_fn.build());

    auto after = before;
    const int inlined = compiler::inline_calls(after, *after.find("main"));
    EXPECT_EQ(inlined, 1);
    expect_same_results(before, after, "main");

    // WCET improves by at least the call overhead.
    const wcet::Analyser wb(before);
    const wcet::Analyser wa(after);
    EXPECT_LT(wa.analyse("main", nucleo().cores[0], 0).cycles,
              wb.analyse("main", nucleo().cores[0], 0).cycles);
}

TEST(Inline, ThresholdRespected) {
    ir::FunctionBuilder big("big", 0);
    for (int i = 0; i < 50; ++i) (void)big.imm(i);
    big.ret(big.imm(0));
    ir::FunctionBuilder main_fn("main", 0);
    (void)main_fn.call("big", {});
    ir::Program program;
    program.add(big.build());
    program.add(main_fn.build());
    EXPECT_EQ(compiler::inline_calls(program, *program.find("main"), 10), 0);
    EXPECT_EQ(compiler::inline_calls(program, *program.find("main"), 100), 1);
}

TEST(Inline, TransitiveThroughNestedCalls) {
    ir::FunctionBuilder inner("inner", 1);
    inner.ret(inner.add_imm(inner.param(0), 1));
    ir::FunctionBuilder middle("middle", 1);
    middle.ret(middle.call("inner", {middle.param(0)}));
    ir::FunctionBuilder outer("outer", 1);
    outer.ret(outer.call("middle", {outer.param(0)}));
    ir::Program before;
    before.add(inner.build());
    before.add(middle.build());
    before.add(outer.build());

    auto after = before;
    const int inlined = compiler::inline_calls(after, *after.find("outer"));
    EXPECT_EQ(inlined, 2);
    expect_same_results(before, after, "outer");
}

// -- MOO engines ------------------------------------------------------------------

TEST(Moo, DominationBasics) {
    EXPECT_TRUE(compiler::dominates({1.0, 1.0}, {2.0, 2.0}));
    EXPECT_TRUE(compiler::dominates({1.0, 2.0}, {2.0, 2.0}));
    EXPECT_FALSE(compiler::dominates({2.0, 2.0}, {2.0, 2.0}));
    EXPECT_FALSE(compiler::dominates({1.0, 3.0}, {2.0, 2.0}));
}

TEST(Moo, ParetoFilterKeepsOnlyNonDominated) {
    std::vector<compiler::Solution> solutions = {
        {{}, {1.0, 5.0}}, {{}, {2.0, 4.0}}, {{}, {3.0, 3.0}},
        {{}, {2.5, 4.5}},  // dominated by {2,4}
        {{}, {5.0, 1.0}}};
    const auto front = compiler::pareto_filter(std::move(solutions));
    EXPECT_EQ(front.size(), 4u);
}

TEST(Moo, HypervolumeIncreasesWithBetterFront) {
    support::Rng rng(1);
    const std::vector<compiler::Objectives> good = {{1.0, 1.0}};
    const std::vector<compiler::Objectives> bad = {{5.0, 5.0}};
    const compiler::Objectives ref = {10.0, 10.0};
    const double hv_good = compiler::hypervolume(good, ref, 20000, rng);
    const double hv_bad = compiler::hypervolume(bad, ref, 20000, rng);
    EXPECT_GT(hv_good, hv_bad);
    EXPECT_NEAR(hv_good, 81.0, 2.0);
}

/// A synthetic 2-objective problem with a known convex front:
/// f1 = x0, f2 = 1 - sqrt(x0) (ZDT1-style with no distance term).
compiler::Objectives zdt_flat(const compiler::Genome& genome) {
    const double x = genome.empty() ? 0.0 : genome[0];
    return {x, 1.0 - std::sqrt(x)};
}

TEST(Moo, FpaApproachesKnownFront) {
    support::Rng rng(5);
    compiler::FpaParams params;
    params.population = 16;
    params.iterations = 30;
    const auto run = compiler::fpa_optimise(zdt_flat, 3, params, rng);
    EXPECT_GE(run.front.size(), 5u);
    EXPECT_GT(run.evaluations, 100);
    // Every front point should lie near the true front f2 = 1 - sqrt(f1).
    for (const auto& solution : run.front) {
        const double f1 = solution.objectives[0];
        const double f2 = solution.objectives[1];
        EXPECT_NEAR(f2, 1.0 - std::sqrt(f1), 0.05);
    }
}

TEST(Moo, Nsga2ApproachesKnownFront) {
    support::Rng rng(6);
    compiler::Nsga2Params params;
    params.population = 20;
    params.generations = 20;
    const auto run = compiler::nsga2_optimise(zdt_flat, 3, params, rng);
    EXPECT_GE(run.front.size(), 5u);
    for (const auto& solution : run.front) {
        const double f1 = solution.objectives[0];
        const double f2 = solution.objectives[1];
        EXPECT_NEAR(f2, 1.0 - std::sqrt(f1), 0.05);
    }
}

TEST(Moo, WeightedSumFindsFewerPoints) {
    support::Rng rng(7);
    compiler::WeightedSumParams params;
    const auto run = compiler::weighted_sum_optimise(zdt_flat, 3, params, rng);
    EXPECT_GE(run.front.size(), 1u);
    // The scalarising baseline characteristically covers less of the front
    // than the population-based engines with a similar budget.
    compiler::FpaParams fpa_params;
    support::Rng rng2(7);
    const auto fpa_run =
        compiler::fpa_optimise(zdt_flat, 3, fpa_params, rng2);
    EXPECT_LE(run.front.size(), fpa_run.front.size());
}

// -- MultiCriteriaCompiler ----------------------------------------------------------

ir::Program pipeline_kernel() {
    ir::FunctionBuilder helper("scale", 2);
    helper.ret(helper.mul(helper.param(0), helper.param(1)));
    ir::FunctionBuilder b("task", 1);
    const auto i = b.loop_begin(16);
    const auto v = b.call("scale", {i, b.param(0)});
    b.store(b.and_imm(i, 31), v);
    b.loop_end();
    b.ret(b.imm(0));
    ir::Program program;
    program.add(helper.build());
    program.add(b.build());
    return program;
}

TEST(MultiCriteria, CompileProducesAnalysedVersionOnPredictableCore) {
    const auto program = pipeline_kernel();
    const compiler::MultiCriteriaCompiler mcc(program, nucleo().cores[0]);
    const auto version = mcc.compile("task", mcc.traditional_config());
    EXPECT_TRUE(version.analysable);
    EXPECT_GT(version.wcet_s, 0.0);
    EXPECT_GT(version.wcec_j, 0.0);
    EXPECT_GT(version.static_instrs, 0);
    ASSERT_NE(version.program, nullptr);
}

TEST(MultiCriteria, ComplexCoreVersionIsMeasuredNotAnalysed) {
    const auto program = pipeline_kernel();
    const auto tk1 = platform::apalis_tk1();
    const compiler::MultiCriteriaCompiler mcc(program, tk1.cores[0]);
    compiler::PassConfig config;
    const auto version = mcc.compile("task", config);
    EXPECT_FALSE(version.analysable);
    EXPECT_GT(version.time_s, 0.0);
    EXPECT_GT(version.energy_j, 0.0);
}

TEST(MultiCriteria, DecodeCoversKnobSpace) {
    const auto program = pipeline_kernel();
    const compiler::MultiCriteriaCompiler mcc(program, nucleo().cores[0]);
    const auto lo = mcc.decode(compiler::Genome(compiler::kGenomeDims, 0.0),
                               true);
    const auto hi = mcc.decode(compiler::Genome(compiler::kGenomeDims, 0.999),
                               true);
    EXPECT_EQ(lo.unroll_factor, 1);
    EXPECT_EQ(hi.unroll_factor, 8);
    EXPECT_FALSE(lo.inline_calls_pass);
    EXPECT_TRUE(hi.inline_calls_pass);
    EXPECT_EQ(lo.security, compiler::SecurityLevel::kNone);
    EXPECT_EQ(hi.security, compiler::SecurityLevel::kLadder);
    EXPECT_EQ(lo.opp_index, 0u);
    EXPECT_EQ(hi.opp_index, nucleo().cores[0].max_opp());
}

TEST(MultiCriteria, OptimiseBeatsTraditionalOnSomeObjective) {
    const auto program = pipeline_kernel();
    const compiler::MultiCriteriaCompiler mcc(program, nucleo().cores[0]);
    compiler::MultiCriteriaCompiler::Options options;
    options.population = 8;
    options.iterations = 8;
    options.explore_security = false;
    const auto front = mcc.optimise("task", options);
    ASSERT_FALSE(front.empty());

    const auto traditional = mcc.compile("task", mcc.traditional_config());
    bool some_better_time = false;
    bool some_better_energy = false;
    for (const auto& version : front) {
        some_better_time |= version.time_s < traditional.time_s;
        some_better_energy |= version.energy_j < traditional.energy_j;
    }
    EXPECT_TRUE(some_better_time || some_better_energy);

    // Front sorted by time and mutually non-dominated.
    for (std::size_t i = 1; i < front.size(); ++i)
        EXPECT_LE(front[i - 1].time_s, front[i].time_s);
}

TEST(MultiCriteria, AllVersionsPreserveTaskSemantics) {
    const auto program = pipeline_kernel();
    const compiler::MultiCriteriaCompiler mcc(program, nucleo().cores[0]);
    compiler::MultiCriteriaCompiler::Options options;
    options.population = 6;
    options.iterations = 5;
    const auto front = mcc.optimise("task", options);
    for (const auto& version : front)
        expect_same_results(program, *version.program, "task");
}

}  // namespace
