// Unit tests for the support primitives: RNG determinism, statistics,
// least-squares fitting, units parsing/formatting.
#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace {

using namespace teamplay::support;

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
    Rng rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
    Rng rng(17);
    std::vector<double> xs;
    xs.reserve(20000);
    for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian());
    EXPECT_NEAR(mean(xs), 0.0, 0.05);
    EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Stats, MeanVarianceKnownValues) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(variance(xs), 4.571428571, 1e-6);
}

TEST(Stats, EmptyInputsAreZero) {
    const std::vector<double> empty;
    EXPECT_EQ(mean(empty), 0.0);
    EXPECT_EQ(variance(empty), 0.0);
    EXPECT_EQ(percentile(empty, 50.0), 0.0);
    EXPECT_EQ(maximum(empty), 0.0);
}

TEST(Stats, PercentileInterpolates) {
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, WelchTDetectsSeparatedMeans) {
    std::vector<double> a;
    std::vector<double> b;
    Rng rng(23);
    for (int i = 0; i < 500; ++i) {
        a.push_back(rng.gaussian(0.0, 1.0));
        b.push_back(rng.gaussian(3.0, 1.0));
    }
    EXPECT_GT(std::abs(welch_t(a, b)), 10.0);
}

TEST(Stats, WelchTNearZeroForSameDistribution) {
    std::vector<double> a;
    std::vector<double> b;
    Rng rng(29);
    for (int i = 0; i < 2000; ++i) {
        a.push_back(rng.gaussian(1.0, 2.0));
        b.push_back(rng.gaussian(1.0, 2.0));
    }
    EXPECT_LT(std::abs(welch_t(a, b)), 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, MutualInformationOfIndependentIsLow) {
    Rng rng(31);
    std::vector<int> labels;
    std::vector<double> obs;
    for (int i = 0; i < 5000; ++i) {
        labels.push_back(static_cast<int>(rng.below(2)));
        obs.push_back(rng.gaussian());
    }
    EXPECT_LT(mutual_information(labels, obs), 0.05);
}

TEST(Stats, MutualInformationOfDependentIsHigh) {
    Rng rng(37);
    std::vector<int> labels;
    std::vector<double> obs;
    for (int i = 0; i < 5000; ++i) {
        const int label = static_cast<int>(rng.below(2));
        labels.push_back(label);
        obs.push_back(label == 0 ? rng.gaussian(0.0, 0.3)
                                 : rng.gaussian(5.0, 0.3));
    }
    EXPECT_GT(mutual_information(labels, obs), 0.9);
}

TEST(Stats, MutualInformationConstantObservableIsZero) {
    const std::vector<int> labels{0, 1, 0, 1};
    const std::vector<double> obs{2.0, 2.0, 2.0, 2.0};
    EXPECT_EQ(mutual_information(labels, obs), 0.0);
}

TEST(Stats, LeastSquaresRecoversCoefficients) {
    // y = 3*x0 + 5*x1 - 2*x2, exactly determined.
    std::vector<std::vector<double>> rows;
    std::vector<double> ys;
    Rng rng(41);
    for (int i = 0; i < 40; ++i) {
        const double x0 = rng.uniform(0.0, 10.0);
        const double x1 = rng.uniform(0.0, 10.0);
        const double x2 = rng.uniform(0.0, 10.0);
        rows.push_back({x0, x1, x2});
        ys.push_back(3.0 * x0 + 5.0 * x1 - 2.0 * x2);
    }
    const auto coeff = least_squares(rows, ys);
    ASSERT_EQ(coeff.size(), 3u);
    EXPECT_NEAR(coeff[0], 3.0, 1e-8);
    EXPECT_NEAR(coeff[1], 5.0, 1e-8);
    EXPECT_NEAR(coeff[2], -2.0, 1e-8);
}

TEST(Stats, LeastSquaresSingularReturnsZeros) {
    // Two identical columns -> singular normal matrix.
    std::vector<std::vector<double>> rows{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
    const std::vector<double> ys{1.0, 2.0, 3.0};
    const auto coeff = least_squares(rows, ys);
    ASSERT_EQ(coeff.size(), 2u);
    EXPECT_EQ(coeff[0], 0.0);
    EXPECT_EQ(coeff[1], 0.0);
}

TEST(Stats, MapeKnownValue) {
    const std::vector<double> pred{110.0, 90.0};
    const std::vector<double> act{100.0, 100.0};
    EXPECT_NEAR(mape(pred, act), 10.0, 1e-9);
}

TEST(Units, FormatTimeSelectsPrefix) {
    EXPECT_EQ(format_time(0.002), "2 ms");
    EXPECT_EQ(format_time(3.5e-6), "3.5 us");
    EXPECT_EQ(format_time(1.0), "1 s");
}

TEST(Units, FormatEnergySelectsPrefix) {
    EXPECT_EQ(format_energy(0.5e-3), "500 uJ");
    EXPECT_EQ(format_energy(2.5e-3), "2.5 mJ");
    EXPECT_EQ(format_energy(2.0), "2 J");
}

TEST(Units, ParseTimeVariants) {
    double s = 0.0;
    EXPECT_TRUE(parse_time("2ms", s));
    EXPECT_DOUBLE_EQ(s, 0.002);
    EXPECT_TRUE(parse_time("500us", s));
    EXPECT_DOUBLE_EQ(s, 500e-6);
    EXPECT_TRUE(parse_time("1.5s", s));
    EXPECT_DOUBLE_EQ(s, 1.5);
    EXPECT_TRUE(parse_time("3min", s));
    EXPECT_DOUBLE_EQ(s, 180.0);
}

TEST(Units, ParseEnergyVariants) {
    double j = 0.0;
    EXPECT_TRUE(parse_energy("0.5mJ", j));
    EXPECT_DOUBLE_EQ(j, 0.5e-3);
    EXPECT_TRUE(parse_energy("200uJ", j));
    EXPECT_DOUBLE_EQ(j, 200e-6);
    EXPECT_TRUE(parse_energy("1J", j));
    EXPECT_DOUBLE_EQ(j, 1.0);
}

TEST(Units, ParseRejectsGarbage) {
    double v = 0.0;
    EXPECT_FALSE(parse_time("fast", v));
    EXPECT_FALSE(parse_time("2parsecs", v));
    EXPECT_FALSE(parse_energy("lots", v));
    EXPECT_FALSE(parse_energy("3volts", v));
}

}  // namespace
