// Canonical structural fingerprint (ir/fingerprint.hpp): rename/label
// insensitivity, mutation sensitivity, the documented load-bearing fields
// (callee names, memory size), and the end-to-end consequence — two
// applications embedding the same kernel share evaluation-cache entries
// without changing a single certificate byte.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/scenario_engine.hpp"
#include "ir/builder.hpp"
#include "ir/fingerprint.hpp"
#include "ir/program.hpp"
#include "usecases/apps.hpp"
#include "usecases/kernels.hpp"

namespace {

using namespace teamplay;

/// A representative kernel: loop + branch + call + secret data.
ir::Function make_kernel(const std::string& name,
                         const std::string& helper) {
    ir::FunctionBuilder b(name, 2);
    const auto base = b.param(0);
    const auto key = b.secret(b.param(1));
    auto acc = b.imm(0);
    const auto index = b.loop_begin(8);
    const auto word = b.load(b.add(base, index), 4);
    const auto mixed = b.call(helper, {word, key});
    const auto odd = b.and_imm(mixed, 1);
    b.if_begin(odd);
    b.store(base, mixed, 16);
    b.if_else();
    b.store(base, acc, 17);
    b.if_end();
    b.assign(acc, b.bxor(acc, mixed));
    b.loop_end();
    b.ret(acc);
    return b.build();
}

ir::Function make_helper(const std::string& name) {
    ir::FunctionBuilder b(name, 2);
    b.ret(b.add(b.mul_imm(b.param(0), 31), b.param(1)));
    return b.build();
}

ir::Program make_program(const std::string& entry,
                         const std::string& helper) {
    ir::Program program;
    program.memory_words = 4096;
    program.add(make_kernel(entry, helper));
    program.add(make_helper(helper));
    return program;
}

/// Apply a register renaming to every register slot of a function.
template <typename Fn>
void remap_registers(ir::Function& fn, Fn&& map) {
    fn.ret_reg = map(fn.ret_reg);
    ir::visit(*fn.body, [&map](ir::Node& node) {
        node.cond = map(node.cond);
        node.trip_reg = map(node.trip_reg);
        node.index_reg = map(node.index_reg);
        node.ret = map(node.ret);
        for (auto& arg : node.args) arg = map(arg);
        for (auto& instr : node.instrs) {
            instr.dst = map(instr.dst);
            instr.a = map(instr.a);
            instr.b = map(instr.b);
            instr.c = map(instr.c);
        }
    });
}

std::uint64_t fp(const ir::Program& program, const std::string& entry) {
    return ir::structural_fingerprint(program, entry);
}

// -- canonicalisation ---------------------------------------------------------

TEST(StructuralFingerprint, IgnoresUnrelatedFunctionsInTheProgram) {
    auto lean = make_program("kernel", "helper");
    auto fat = make_program("kernel", "helper");
    fat.add(make_helper("unrelated_extra"));
    EXPECT_EQ(fp(lean, "kernel"), fp(fat, "kernel"));
}

TEST(StructuralFingerprint, AlphaRenamedRegistersCollide) {
    const auto original = make_program("kernel", "helper");
    auto renamed = make_program("kernel", "helper");
    auto* kernel = renamed.find("kernel");
    // Shift every non-parameter register up by 11: a semantics-preserving
    // alpha-renaming of the temporaries.
    remap_registers(*kernel, [&](ir::Reg reg) {
        if (reg == ir::kNoReg || reg < kernel->param_count) return reg;
        return static_cast<ir::Reg>(reg + 11);
    });
    kernel->reg_count += 11;
    EXPECT_EQ(fp(original, "kernel"), fp(renamed, "kernel"));
}

TEST(StructuralFingerprint, RelabelledEntryCollides) {
    const auto original = make_program("kernel", "helper");
    auto relabelled = make_program("kernel", "helper");
    auto renamed = *relabelled.find("kernel");
    renamed.name = "kernel_v2";
    relabelled.functions.erase("kernel");
    relabelled.add(std::move(renamed));
    EXPECT_EQ(fp(original, "kernel"), fp(relabelled, "kernel_v2"));
}

TEST(StructuralFingerprint, ParameterRegistersArePinned) {
    // f(a, b) = a - b and f(a, b) = b - a are different functions even
    // though a blind renaming maps one onto the other: parameters are
    // positional, so the canonicaliser must not erase their identity.
    ir::FunctionBuilder lhs("f", 2);
    lhs.ret(lhs.sub(lhs.param(0), lhs.param(1)));
    ir::FunctionBuilder rhs("f", 2);
    rhs.ret(rhs.sub(rhs.param(1), rhs.param(0)));
    ir::Program a;
    a.add(lhs.build());
    ir::Program b;
    b.add(rhs.build());
    EXPECT_NE(fp(a, "f"), fp(b, "f"));
}

// -- mutation sensitivity -----------------------------------------------------

TEST(StructuralFingerprint, OneInstructionMutationDiffers) {
    const auto original = make_program("kernel", "helper");

    auto imm_mutant = make_program("kernel", "helper");
    ir::for_each_instr(*imm_mutant.find("kernel")->body,
                       [mutated = false](ir::Instr& instr) mutable {
                           if (!mutated && instr.op == ir::Opcode::kLoad) {
                               instr.imm += 1;
                               mutated = true;
                           }
                       });
    EXPECT_NE(fp(original, "kernel"), fp(imm_mutant, "kernel"));

    auto op_mutant = make_program("kernel", "helper");
    ir::for_each_instr(*op_mutant.find("helper")->body,
                       [](ir::Instr& instr) {
                           if (instr.op == ir::Opcode::kAdd)
                               instr.op = ir::Opcode::kSub;
                       });
    EXPECT_NE(fp(original, "kernel"), fp(op_mutant, "kernel"));

    auto secret_mutant = make_program("kernel", "helper");
    ir::for_each_instr(*secret_mutant.find("kernel")->body,
                       [](ir::Instr& instr) { instr.secret = false; });
    EXPECT_NE(fp(original, "kernel"), fp(secret_mutant, "kernel"));
}

TEST(StructuralFingerprint, LoopBoundParticipates) {
    auto original = make_program("kernel", "helper");
    auto mutant = make_program("kernel", "helper");
    ir::visit(*mutant.find("kernel")->body, [](ir::Node& node) {
        if (node.kind == ir::NodeKind::kLoop) node.bound += 1;
    });
    EXPECT_NE(fp(original, "kernel"), fp(mutant, "kernel"));
}

// -- documented load-bearing fields ------------------------------------------

TEST(StructuralFingerprint, CalleeNamesAreLoadBearing) {
    // Certificate proofs print "call <name>" notes, so kernels that differ
    // only in a helper's label must not share cached analysis results.
    const auto original = make_program("kernel", "helper");
    const auto renamed_callee = make_program("kernel", "helper_v2");
    EXPECT_NE(fp(original, "kernel"), fp(renamed_callee, "kernel"));
}

TEST(StructuralFingerprint, MemoryWordsAreLoadBearing) {
    const auto original = make_program("kernel", "helper");
    auto resized = make_program("kernel", "helper");
    resized.memory_words *= 2;
    EXPECT_NE(fp(original, "kernel"), fp(resized, "kernel"));
}

TEST(StructuralFingerprint, MissingEntryHashesWithoutThrowing) {
    const auto program = make_program("kernel", "helper");
    const auto unresolved = fp(program, "absent");
    EXPECT_NE(unresolved, fp(program, "kernel"));
    EXPECT_NE(unresolved, fp(program, "also_absent"));
}

// -- end-to-end: cross-program memoisation ------------------------------------

core::WorkflowOptions fast_options() {
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal_iterations = 60;
    return options;
}

core::ScenarioRequest request_for(const usecases::UseCaseApp& app) {
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.csl_source = app.csl_source;
    request.options = fast_options();
    request.label = app.name;
    return request;
}

TEST(CrossProgramMemoisation, SharedKernelsHitAcrossApps) {
    const auto uav = usecases::make_uav_app("apalis-tk1");
    const auto rover = usecases::make_rover_app("apalis-tk1");

    // The shared perception kernels really are structurally identical
    // across the two programs (different whole-program content).
    for (const char* entry : {"uav_capture", "uav_resize", "uav_detect"})
        EXPECT_EQ(fp(uav.program, entry), fp(rover.program, entry))
            << entry;
    EXPECT_NE(core::fingerprint_program(uav.program),
              core::fingerprint_program(rover.program));

    // Isolated baselines: every key misses once per app.
    core::ScenarioEngine uav_engine;
    const auto uav_report = uav_engine.run(request_for(uav));
    const auto uav_misses = uav_engine.cache_stats().misses;

    core::ScenarioEngine rover_engine;
    const auto rover_report = rover_engine.run(request_for(rover));
    const auto rover_misses = rover_engine.cache_stats().misses;

    // Shared engine: the rover re-uses every evaluation of the kernels the
    // UAV already analysed — strictly fewer misses, at least one hit from
    // a key the *other* program created.
    core::ScenarioEngine shared;
    const auto uav_joint = shared.run(request_for(uav));
    const auto misses_after_uav = shared.cache_stats().misses;
    EXPECT_EQ(misses_after_uav, uav_misses);
    const auto rover_joint = shared.run(request_for(rover));
    const auto rover_joint_misses =
        shared.cache_stats().misses - misses_after_uav;
    EXPECT_LT(rover_joint_misses, rover_misses);

    // Cross-program serving changes no output byte.
    EXPECT_EQ(uav_joint.certificate.to_text(),
              uav_report.certificate.to_text());
    EXPECT_EQ(rover_joint.certificate.to_text(),
              rover_report.certificate.to_text());
    EXPECT_EQ(rover_joint.summary(), rover_report.summary());
}

TEST(CrossProgramMemoisation, CompiledFrontSharedAcrossPrograms) {
    // Predictable-flow variant ("one front compiled"): two synthetic apps
    // on the same predictable board embed the same kernel next to
    // different siblings; the second scenario's front is a pure cache hit.
    const auto pill = usecases::make_camera_pill_app();

    ir::Program app_a;
    app_a.memory_words = 4096;
    app_a.add(make_kernel("shared_kernel", "shared_helper"));
    app_a.add(make_helper("shared_helper"));
    app_a.add(make_helper("a_only"));

    ir::Program app_b;
    app_b.memory_words = 4096;
    app_b.add(make_kernel("shared_kernel", "shared_helper"));
    app_b.add(make_helper("shared_helper"));
    app_b.add(make_kernel("b_only", "shared_helper"));

    const std::string csl =
        "app shared_kernel_app on " + pill.platform.name +
        " deadline 500ms {\n"
        "  task main { entry shared_kernel; period 500ms; deadline 400ms;"
        " core_class mcu; }\n"
        "}\n";

    core::ScenarioEngine engine;
    core::ScenarioRequest request;
    request.platform = &pill.platform;
    request.csl_source = csl;
    request.options = fast_options();

    request.program = &app_a;
    request.label = "app_a";
    const auto report_a = engine.run(request);
    const auto after_a = engine.cache_stats();

    request.program = &app_b;
    request.label = "app_b";
    const auto report_b = engine.run(request);
    const auto after_b = engine.cache_stats();

    // The front was compiled once: the second scenario added hits for the
    // shared kernel's keys but not a single new miss.
    EXPECT_EQ(after_b.misses, after_a.misses);
    EXPECT_GT(after_b.hits, after_a.hits);
    EXPECT_EQ(report_a.certificate.to_text(),
              report_b.certificate.to_text());
}

}  // namespace
