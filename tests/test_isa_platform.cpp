// Sanity sweeps over the ISA cost models and platform descriptions: the
// invariants every target must satisfy for the analyses and the simulator to
// be meaningful.
#include <gtest/gtest.h>

#include <vector>

#include "isa/target_model.hpp"
#include "platform/platform.hpp"

namespace {

using namespace teamplay;

std::vector<isa::TargetModel> all_models() {
    return {isa::cortex_m0_model(),  isa::leon3_model(),
            isa::cortex_a15_model(), isa::cortex_a57_model(),
            isa::denver2_model(),    isa::gpu_sm_model(),
            isa::pill_fpga_model()};
}

std::vector<platform::Platform> all_platforms() {
    return {platform::nucleo_f091(), platform::camera_pill_board(),
            platform::gr712rc(),     platform::apalis_tk1(),
            platform::jetson_tx2(),  platform::jetson_nano()};
}

TEST(IsaModels, AllCostsPositive) {
    for (const auto& model : all_models()) {
        SCOPED_TRACE(model.name);
        for (int c = 0; c < isa::kNumInstrClasses; ++c) {
            const auto cls = static_cast<isa::InstrClass>(c);
            EXPECT_GT(model.cycles_of(cls), 0.0)
                << isa::instr_class_name(cls);
            EXPECT_GT(model.energy_of(cls), 0.0)
                << isa::instr_class_name(cls);
        }
        EXPECT_GT(model.branch_cycles, 0.0);
        EXPECT_GT(model.loop_iter_cycles, 0.0);
        EXPECT_GT(model.call_cycles, 0.0);
        EXPECT_GT(model.nominal_voltage, 0.0);
        EXPECT_GE(model.data_alpha_pj_per_bit, 0.0);
    }
}

TEST(IsaModels, PredictableCoresHaveNoStochasticTiming) {
    for (const auto& model : all_models()) {
        if (!model.predictable) continue;
        SCOPED_TRACE(model.name);
        EXPECT_EQ(model.cache_miss_prob, 0.0);
        EXPECT_EQ(model.cache_miss_penalty, 0.0);
        EXPECT_EQ(model.timing_jitter_sigma, 0.0);
    }
}

TEST(IsaModels, ComplexCoresCarryNoiseParameters) {
    for (const auto& model : all_models()) {
        if (model.predictable) continue;
        SCOPED_TRACE(model.name);
        EXPECT_GT(model.timing_jitter_sigma, 0.0);
        EXPECT_GT(model.cache_miss_prob, 0.0);
    }
}

TEST(IsaModels, DivIsTheSlowestClassOnInOrderCores) {
    for (const auto& model :
         {isa::cortex_m0_model(), isa::leon3_model()}) {
        SCOPED_TRACE(model.name);
        const double div_cycles = model.cycles_of(isa::InstrClass::kDiv);
        for (int c = 0; c < isa::kNumInstrClasses; ++c) {
            const auto cls = static_cast<isa::InstrClass>(c);
            if (cls == isa::InstrClass::kDiv) continue;
            EXPECT_LT(model.cycles_of(cls), div_cycles);
        }
    }
}

TEST(IsaModels, EveryOpcodeMapsToAClass) {
    for (int op = 0; op < ir::kNumOpcodes; ++op) {
        const auto cls = isa::instr_class(static_cast<ir::Opcode>(op));
        EXPECT_GE(static_cast<int>(cls), 0);
        EXPECT_LT(static_cast<int>(cls), isa::kNumInstrClasses);
    }
    EXPECT_EQ(isa::instr_class(ir::Opcode::kMul), isa::InstrClass::kMul);
    EXPECT_EQ(isa::instr_class(ir::Opcode::kRem), isa::InstrClass::kDiv);
    EXPECT_EQ(isa::instr_class(ir::Opcode::kLoad), isa::InstrClass::kLoad);
}

TEST(Platforms, OppTablesSortedAndConsistent) {
    for (const auto& p : all_platforms()) {
        SCOPED_TRACE(p.name);
        EXPECT_FALSE(p.cores.empty());
        EXPECT_GT(p.base_power_w, 0.0);
        for (const auto& core : p.cores) {
            SCOPED_TRACE(core.name);
            ASSERT_FALSE(core.opps.empty());
            for (std::size_t i = 1; i < core.opps.size(); ++i) {
                // Frequency, voltage and leakage all rise together.
                EXPECT_GT(core.opps[i].freq_hz, core.opps[i - 1].freq_hz);
                EXPECT_GE(core.opps[i].voltage, core.opps[i - 1].voltage);
                EXPECT_GE(core.opps[i].static_power_w,
                          core.opps[i - 1].static_power_w);
            }
            for (const auto& opp : core.opps) {
                EXPECT_GT(opp.freq_hz, 0.0);
                EXPECT_GT(opp.voltage, 0.0);
                EXPECT_GT(opp.static_power_w, 0.0);
            }
            EXPECT_EQ(core.max_opp(), core.opps.size() - 1);
        }
    }
}

TEST(Platforms, EnergyScaleIsMonotoneInVoltage) {
    for (const auto& p : all_platforms()) {
        for (const auto& core : p.cores) {
            SCOPED_TRACE(p.name + "/" + core.name);
            double previous = 0.0;
            for (const auto& opp : core.opps) {
                const double scale = core.energy_scale(opp);
                EXPECT_GT(scale, 0.0);
                EXPECT_GE(scale, previous);
                previous = scale;
            }
        }
    }
}

TEST(Platforms, FindCoreAndClassLookups) {
    const auto tk1 = platform::apalis_tk1();
    EXPECT_NE(tk1.find_core("a15-0"), nullptr);
    EXPECT_NE(tk1.find_core("gk20a"), nullptr);
    EXPECT_EQ(tk1.find_core("nonexistent"), nullptr);
    EXPECT_EQ(tk1.cores_of_class("big").size(), 4u);
    EXPECT_EQ(tk1.cores_of_class("gpu").size(), 1u);
}

TEST(Platforms, PillFpgaIsDistinctClass) {
    const auto pill = platform::camera_pill_board();
    ASSERT_EQ(pill.cores.size(), 2u);
    EXPECT_EQ(pill.cores_of_class("fpga").size(), 1u);
    EXPECT_EQ(pill.cores_of_class("mcu").size(), 1u);
    // The FPGA co-processor is dramatically more energy-efficient per op.
    const auto& m0 = pill.cores[0].model;
    const auto& fpga = pill.cores[1].model;
    EXPECT_LT(fpga.energy_of(isa::InstrClass::kAlu),
              m0.energy_of(isa::InstrClass::kAlu) / 2.0);
}

TEST(Platforms, ClassNamesCoverAllClasses) {
    for (int c = 0; c < isa::kNumInstrClasses; ++c) {
        const auto name =
            isa::instr_class_name(static_cast<isa::InstrClass>(c));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
}

}  // namespace
