// Service-core surfaces of the ScenarioEngine: async submission tickets,
// completion callbacks and their ordering, cooperative cancellation (and
// that it leaves the evaluation cache retryable), bounded-cache eviction
// accounting and byte-identical certificates under a tiny budget, and the
// per-stage telemetry threaded through BatchStats and reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/scenario_engine.hpp"
#include "support/thread_pool.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

core::WorkflowOptions fast_options() {
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal_iterations = 60;
    return options;
}

core::ScenarioRequest request_for(const usecases::UseCaseApp& app,
                                  const core::WorkflowOptions& options) {
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = csl::parse(app.csl_source);
    request.options = options;
    request.label = app.name;
    return request;
}

// -- thread pool submission primitives ---------------------------------------

TEST(ThreadPool, SubmitRunsViaTryRunOneOnCallerOnlyPool) {
    support::ThreadPool pool(0);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    EXPECT_TRUE(order.empty());  // nothing runs until someone drains
    while (pool.try_run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));  // FIFO
    EXPECT_FALSE(pool.try_run_one());
}

TEST(ThreadPool, NestedParallelForWithZeroWorkers) {
    support::ThreadPool pool(0);
    std::vector<std::vector<int>> grid(8, std::vector<int>(8, 0));
    pool.parallel_for(grid.size(), [&](std::size_t row) {
        pool.parallel_for(grid[row].size(),
                          [&](std::size_t col) { grid[row][col] = 1; });
    });
    for (const auto& row : grid)
        EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), 8);
}

// -- streaming submission ------------------------------------------------------

TEST(Streaming, ResultAvailableBeforeBatchDrains) {
    const auto pill = usecases::make_camera_pill_app();
    const auto space = usecases::make_space_app();
    core::ScenarioEngine engine;  // caller-only: deterministic FIFO drain

    auto first = engine.submit(request_for(pill, fast_options()));
    auto second = engine.submit(request_for(space, fast_options()));
    EXPECT_FALSE(first.done());
    EXPECT_FALSE(second.done());

    // Waiting on the first ticket drains exactly up to its completion: the
    // streamed path yields a per-scenario result while the rest of the
    // batch is still pending — the opposite of the old run_all barrier.
    first.wait();
    EXPECT_TRUE(first.done());
    EXPECT_FALSE(second.done());

    const auto first_report = first.get();
    EXPECT_TRUE(contracts::verify_certificate(first_report.certificate));
    const auto second_report = second.get();
    EXPECT_TRUE(second.done());
    EXPECT_TRUE(contracts::verify_certificate(second_report.certificate));
}

TEST(Streaming, CompletionCallbacksObserveEveryScenarioOnce) {
    std::vector<usecases::UseCaseApp> apps;
    apps.push_back(usecases::make_camera_pill_app());
    apps.push_back(usecases::make_space_app());
    apps.push_back(usecases::make_uav_app("apalis-tk1"));

    core::ScenarioEngine engine({.worker_threads = 3});
    std::mutex mutex;
    std::vector<std::size_t> completed_ids;
    std::vector<core::ScenarioTicket> tickets;
    for (const auto& app : apps) {
        tickets.push_back(engine.submit(
            request_for(app, fast_options()),
            [&](const core::ScenarioOutcome& outcome) {
                ASSERT_NE(outcome.report, nullptr);
                EXPECT_FALSE(outcome.cancelled);
                const std::lock_guard<std::mutex> lock(mutex);
                completed_ids.push_back(outcome.id);
            }));
    }
    for (auto& ticket : tickets) ticket.wait();

    // Every scenario completed exactly once, whatever the completion order.
    ASSERT_EQ(completed_ids.size(), tickets.size());
    std::sort(completed_ids.begin(), completed_ids.end());
    for (std::size_t i = 0; i < tickets.size(); ++i)
        EXPECT_EQ(completed_ids[i], tickets[i].id());
}

TEST(Streaming, CallerOnlyEngineCompletesInRequestOrder) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;  // caller-only: FIFO queue drain
    std::vector<std::size_t> order;
    std::vector<core::ScenarioTicket> tickets;
    for (int i = 0; i < 3; ++i) {
        tickets.push_back(
            engine.submit(request_for(pill, fast_options()),
                          [&order](const core::ScenarioOutcome& outcome) {
                              order.push_back(outcome.id);
                          }));
    }
    for (auto& ticket : tickets) ticket.wait();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Streaming, StreamedCertificatesMatchRunAllAndWorkerCounts) {
    std::vector<usecases::UseCaseApp> apps;
    apps.push_back(usecases::make_camera_pill_app());
    apps.push_back(usecases::make_uav_app("jetson-nano"));
    std::vector<core::ScenarioRequest> requests;
    for (const auto& app : apps)
        requests.push_back(request_for(app, fast_options()));

    core::ScenarioEngine batch_engine;
    const auto batch_reports = batch_engine.run_all(requests);

    core::ScenarioEngine stream_engine({.worker_threads = 4});
    std::vector<core::ScenarioTicket> tickets;
    for (const auto& request : requests)
        tickets.push_back(stream_engine.submit(request));
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const auto report = tickets[i].get();
        EXPECT_EQ(report.certificate.to_text(),
                  batch_reports[i].certificate.to_text());
        EXPECT_EQ(report.glue_code, batch_reports[i].glue_code);
    }
}

TEST(Streaming, FireAndForgetSurvivesEngineDestruction) {
    const auto pill = usecases::make_camera_pill_app();
    std::atomic<int> completions{0};
    {
        core::ScenarioEngine engine({.worker_threads = 2});
        // Tickets dropped on the floor: the engine is destroyed while the
        // scenarios may be queued or mid-stage on workers.  Destruction
        // must let them run to completion against live engine state.
        for (int i = 0; i < 3; ++i) {
            (void)engine.submit(request_for(pill, fast_options()),
                                [&](const core::ScenarioOutcome& outcome) {
                                    if (outcome.report != nullptr)
                                        completions.fetch_add(1);
                                });
        }
    }
    EXPECT_EQ(completions.load(), 3);
}

TEST(Streaming, GetIsSingleShot) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;
    auto ticket = engine.submit(request_for(pill, fast_options()));
    (void)ticket.get();
    EXPECT_THROW((void)ticket.get(), std::logic_error);
}

// -- cancellation -------------------------------------------------------------

TEST(Streaming, CancellationMidBatchLeavesOthersAndCacheIntact) {
    const auto pill = usecases::make_camera_pill_app();
    const auto space = usecases::make_space_app();
    const auto options = fast_options();

    // Baseline bytes from an untouched engine.
    core::ScenarioEngine reference;
    const auto expected = reference.run(request_for(space, options));

    core::ScenarioEngine engine;  // caller-only: nothing ran yet
    auto first = engine.submit(request_for(pill, options));
    auto cancelled = engine.submit(request_for(space, options));
    auto third = engine.submit(request_for(pill, options));

    bool observed_cancel = false;
    std::exception_ptr observed_error;
    auto watched = engine.submit(
        request_for(space, options),
        [&](const core::ScenarioOutcome& outcome) {
            observed_cancel = outcome.cancelled;
            observed_error = outcome.error;
        });
    cancelled.cancel();
    watched.cancel();
    EXPECT_TRUE(cancelled.cancel_requested());

    EXPECT_NO_THROW((void)first.get());
    EXPECT_THROW((void)cancelled.get(), core::CancelledError);
    EXPECT_NO_THROW((void)third.get());
    EXPECT_THROW((void)watched.get(), core::CancelledError);
    EXPECT_TRUE(observed_cancel);
    EXPECT_NE(observed_error, nullptr);

    // The cancelled request is retryable on the same engine, and the cache
    // holds nothing poisoned: the rerun produces the reference bytes.
    const auto retried = engine.run(request_for(space, options));
    EXPECT_EQ(retried.certificate.to_text(),
              expected.certificate.to_text());
    EXPECT_EQ(retried.glue_code, expected.glue_code);
}

// -- bounded cache ------------------------------------------------------------

TEST(BoundedCache, EvictionKeepsCertificatesByteIdentical) {
    std::vector<usecases::UseCaseApp> apps;
    apps.push_back(usecases::make_camera_pill_app());
    apps.push_back(usecases::make_space_app());
    apps.push_back(usecases::make_uav_app("apalis-tk1"));
    std::vector<core::ScenarioRequest> requests;
    for (const auto& app : apps) {
        // Two variants per app so a generous cache would serve hits.
        auto options = fast_options();
        requests.push_back(request_for(app, options));
        options.scheduler.objective =
            coordination::Scheduler::Objective::kMakespan;
        requests.push_back(request_for(app, options));
    }

    core::ScenarioEngine unbounded;
    const auto expected = unbounded.run_all(requests);

    core::ScenarioEngine tiny(
        {.worker_threads = 2, .cache_budget = {.max_entries = 1}});
    core::BatchStats stats;
    const auto reports = tiny.run_all(requests, &stats);

    ASSERT_EQ(reports.size(), expected.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(reports[i].certificate.to_text(),
                  expected[i].certificate.to_text())
            << requests[i].label << " #" << i;
    }
    // A one-entry budget on a multi-key batch must have evicted, and the
    // resident set must respect the budget once the batch drained.
    EXPECT_GT(stats.cache.evictions, 0u);
    EXPECT_LE(tiny.cache_stats().entries, 1u);
}

core::EvaluationKey scalar_key(std::uint64_t n) {
    core::EvaluationKey key;
    key.structural_fp = n;
    key.entry = "f" + std::to_string(n);
    key.kind = core::AnalysisKind::kTaint;
    return key;
}

core::EvaluationCache::Compute scalar_compute(int& computes, double value) {
    return [&computes, value] {
        ++computes;
        core::EvaluationResult result;
        result.leakage = value;
        return result;
    };
}

TEST(BoundedCache, LruEvictsColdestAndCountsConsistently) {
    core::EvaluationCache cache({.max_entries = 2});
    int computes = 0;
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    (void)cache.lookup(scalar_key(2), scalar_compute(computes, 2.0));
    // Touch key 1 so key 2 is the coldest, then overflow the budget.
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    (void)cache.lookup(scalar_key(3), scalar_compute(computes, 3.0));
    EXPECT_EQ(computes, 3);

    auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GT(stats.resident_cost, 0.0);

    // Key 1 was kept hot; key 2 was evicted and recomputes.
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    EXPECT_EQ(computes, 3);
    (void)cache.lookup(scalar_key(2), scalar_compute(computes, 2.0));
    EXPECT_EQ(computes, 4);
}

TEST(BoundedCache, CostBudgetEvicts) {
    // Each scalar entry costs 1.0; a 1.5 budget holds exactly one.
    core::EvaluationCache cache({.max_cost = 1.5});
    int computes = 0;
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    (void)cache.lookup(scalar_key(2), scalar_compute(computes, 2.0));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_DOUBLE_EQ(stats.resident_cost, 1.0);
}

TEST(BoundedCache, InFlightSlotIsNeverEvicted) {
    core::EvaluationCache cache({.max_entries = 1});
    int computes = 0;
    double inner = 0.0;
    // While key 2's compute is in flight, key 1 is admitted and churned
    // through the one-entry budget; the in-flight slot must survive.
    const auto result = cache.lookup(scalar_key(2), [&] {
        inner = cache.lookup(scalar_key(1), scalar_compute(computes, 1.0))
                    ->leakage;
        core::EvaluationResult r;
        r.leakage = 2.0;
        return r;
    });
    EXPECT_DOUBLE_EQ(inner, 1.0);
    EXPECT_DOUBLE_EQ(result->leakage, 2.0);
    int recomputes = 0;
    (void)cache.lookup(scalar_key(2), scalar_compute(recomputes, 2.0));
    EXPECT_EQ(recomputes, 0);  // key 2 resident: it finished last (hot)
}

TEST(BoundedCache, ClearResetsCountersAndKeepsNothing) {
    core::EvaluationCache cache({.max_entries = 2});
    int computes = 0;
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    (void)cache.lookup(scalar_key(2), scalar_compute(computes, 2.0));
    (void)cache.lookup(scalar_key(3), scalar_compute(computes, 3.0));
    cache.clear();
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_DOUBLE_EQ(stats.resident_cost, 0.0);
    (void)cache.lookup(scalar_key(1), scalar_compute(computes, 1.0));
    EXPECT_EQ(computes, 4);  // recomputed after clear
}

// -- per-stage telemetry -------------------------------------------------------

TEST(StageTelemetry, MergeIsOrderIndependentAndAggregates) {
    core::StageTelemetry a;
    a.record("parse", 0.010);
    a.record("analyse", 0.200);
    core::StageTelemetry b;
    b.record("parse", 0.030);

    core::StageTelemetry ab = a;
    ab.merge(b);
    core::StageTelemetry ba = b;
    ba.merge(a);

    ASSERT_EQ(ab.stages().size(), 2u);
    const auto& parse = ab.stages().at("parse");
    EXPECT_EQ(parse.count, 2u);
    EXPECT_DOUBLE_EQ(parse.total_s, 0.040);
    EXPECT_DOUBLE_EQ(parse.max_s, 0.030);
    EXPECT_DOUBLE_EQ(parse.mean_s(), 0.020);
    EXPECT_EQ(ab.to_string(), ba.to_string());
    EXPECT_NE(ab.to_string().find("analyse"), std::string::npos);
}

TEST(StageTelemetry, ReportsAndBatchStatsCarryLaps) {
    const auto pill = usecases::make_camera_pill_app();
    const auto uav = usecases::make_uav_app("apalis-tk1");
    std::vector<core::ScenarioRequest> requests;
    requests.push_back(request_for(pill, fast_options()));
    requests.push_back(request_for(uav, fast_options()));

    core::ScenarioEngine engine({.worker_threads = 2});
    core::BatchStats stats;
    const auto reports = engine.run_all(requests, &stats);

    const char* expected[] = {"parse", "analyse", "schedule", "contract",
                              "certify"};
    for (const auto& report : reports) {
        ASSERT_EQ(report.stage_laps.size(), 5u);
        for (std::size_t i = 0; i < 5; ++i) {
            EXPECT_EQ(report.stage_laps[i].stage, expected[i]);
            EXPECT_GE(report.stage_laps[i].seconds, 0.0);
        }
    }
    ASSERT_EQ(stats.stage_telemetry.stages().size(), 5u);
    for (const char* stage : expected) {
        const auto& per_stage = stats.stage_telemetry.stages().at(stage);
        EXPECT_EQ(per_stage.count, requests.size()) << stage;
        EXPECT_GE(per_stage.max_s, 0.0) << stage;
        EXPECT_LE(per_stage.max_s, per_stage.total_s + 1e-12) << stage;
    }
    // The engine's cumulative view saw the same laps.
    const auto cumulative = engine.stage_telemetry();
    ASSERT_EQ(cumulative.stages().size(), 5u);
    EXPECT_EQ(cumulative.stages().at("certify").count, requests.size());
    EXPECT_FALSE(stats.to_string().empty());
    EXPECT_FALSE(stats.stage_telemetry.to_string().empty());
}

}  // namespace
