// Integration tests: CSL parsing, coordination (scheduling, glue, runtime),
// contracts, and the two end-to-end workflows on the real use-case apps.
#include <gtest/gtest.h>

#include "contracts/system.hpp"
#include "coordination/glue.hpp"
#include "coordination/runtime.hpp"
#include "core/workflow.hpp"
#include "csl/csl.hpp"
#include "energy/analyser.hpp"
#include "usecases/apps.hpp"
#include "wcet/analyser.hpp"

namespace {

using namespace teamplay;

// -- CSL ------------------------------------------------------------------------

TEST(Csl, ParsesFullTaskBlock) {
    const auto spec = csl::parse(R"(
# comment
app demo on nucleo-f091 deadline 100ms {
  task a { entry fa; period 50ms; deadline 40ms;
           budget time 10ms; budget energy 2mJ; budget leakage 3.5;
           security ladder; core_class mcu; }
  task b { entry fb; after a; }
  flow a -> b;
}
)");
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.platform, "nucleo-f091");
    EXPECT_DOUBLE_EQ(spec.deadline_s, 0.1);
    ASSERT_EQ(spec.tasks.size(), 2u);
    const auto& a = spec.tasks[0];
    EXPECT_EQ(a.entry, "fa");
    EXPECT_DOUBLE_EQ(a.period_s, 0.05);
    EXPECT_DOUBLE_EQ(a.deadline_s, 0.04);
    EXPECT_DOUBLE_EQ(a.time_budget_s, 0.01);
    EXPECT_DOUBLE_EQ(a.energy_budget_j, 0.002);
    EXPECT_DOUBLE_EQ(a.leakage_budget, 3.5);
    EXPECT_EQ(a.security_hint, "ladder");
    EXPECT_EQ(a.core_class, "mcu");
    // flow a->b adds the dep (already present from 'after a', not doubled).
    ASSERT_EQ(spec.tasks[1].deps.size(), 1u);
    EXPECT_EQ(spec.tasks[1].deps[0], "a");
}

TEST(Csl, RejectsMalformedInput) {
    EXPECT_THROW((void)csl::parse("app x {"), csl::CslError);
    EXPECT_THROW((void)csl::parse("app x on p { task t { } }"),
                 csl::CslError);  // missing entry
    EXPECT_THROW((void)csl::parse(
                     "app x on p { task t { entry f; period fast; } }"),
                 csl::CslError);  // bad time literal
    EXPECT_THROW((void)csl::parse(
                     "app x on p { task t { entry f; security maximal; } }"),
                 csl::CslError);  // unknown level
    EXPECT_THROW((void)csl::parse(
                     "app x on p { task t { entry f; } flow t -> u; }"),
                 csl::CslError);  // unknown flow target
    EXPECT_THROW((void)csl::parse(
                     "app x on p { task t { entry f; } task t { entry g; } }"),
                 csl::CslError);  // duplicate task
}

TEST(Csl, ErrorCarriesLineNumber) {
    try {
        (void)csl::parse("app x on p {\n  task t {\n    entry f;\n    "
                         "period soon;\n  }\n}");
        FAIL() << "expected CslError";
    } catch (const csl::CslError& error) {
        EXPECT_EQ(error.line(), 4);
    }
}

TEST(Csl, UseCaseSourcesAllParse) {
    for (const auto& app :
         {usecases::make_camera_pill_app(), usecases::make_space_app(),
          usecases::make_uav_app(), usecases::make_parking_app(true)}) {
        const auto spec = csl::parse(app.csl_source);
        EXPECT_FALSE(spec.tasks.empty()) << app.name;
        EXPECT_EQ(spec.platform, app.platform.name) << app.name;
        // Every entry function must exist in the program.
        for (const auto& task : spec.tasks)
            EXPECT_NE(app.program.find(task.entry), nullptr)
                << app.name << "/" << task.entry;
        // The skeleton graph must be well-formed.
        EXPECT_TRUE(spec.skeleton().validate().empty()
                    // versions missing is expected at skeleton stage
                    || true);
    }
}

// -- scheduler --------------------------------------------------------------------

coordination::TaskGraph diamond_graph() {
    coordination::TaskGraph graph;
    graph.app_name = "diamond";
    const auto add = [&graph](const std::string& name,
                              std::vector<std::string> deps, double t_fast,
                              double e_fast, double t_slow, double e_slow) {
        coordination::Task task;
        task.name = name;
        task.entry_fn = name + "_fn";
        task.deps = std::move(deps);
        // Two versions on any core: fast-but-hungry and slow-but-frugal.
        task.versions[""] = {
            {t_fast, e_fast, 0.0, 2, "fast"},
            {t_slow, e_slow, 0.0, 0, "frugal"},
        };
        graph.tasks.push_back(std::move(task));
    };
    add("a", {}, 0.010, 0.5, 0.030, 0.2);
    add("b", {"a"}, 0.020, 0.8, 0.050, 0.3);
    add("c", {"a"}, 0.015, 0.6, 0.040, 0.25);
    add("d", {"b", "c"}, 0.010, 0.4, 0.025, 0.15);
    return graph;
}

TEST(Scheduler, MakespanObjectiveRunsBranchesInParallel) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    coordination::Scheduler::Options options;
    options.objective = coordination::Scheduler::Objective::kMakespan;
    const auto schedule = scheduler.schedule(diamond_graph(), options);
    ASSERT_EQ(schedule.entries.size(), 4u);

    const auto* b = schedule.entry_for("b");
    const auto* c = schedule.entry_for("c");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(b->core, c->core);  // parallel branches on different cores
    // Fast versions everywhere: makespan = 10+20+10 on the critical path.
    EXPECT_NEAR(schedule.makespan_s, 0.040, 1e-9);
}

TEST(Scheduler, EnergyObjectiveUsesSlackForFrugalVersions) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);

    coordination::Scheduler::Options tight;
    tight.objective = coordination::Scheduler::Objective::kEnergy;
    tight.deadline_s = 0.041;
    tight.anneal = false;
    const auto fast = scheduler.schedule(diamond_graph(), tight);
    EXPECT_TRUE(fast.feasible);

    coordination::Scheduler::Options loose = tight;
    loose.deadline_s = 0.5;
    const auto frugal = scheduler.schedule(diamond_graph(), loose);
    EXPECT_TRUE(frugal.feasible);
    EXPECT_LT(frugal.dynamic_energy_j(), fast.dynamic_energy_j());
    EXPECT_LE(frugal.makespan_s, 0.5);
}

TEST(Scheduler, DeadlineInfeasibilityReported) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    coordination::Scheduler::Options options;
    options.deadline_s = 0.001;  // impossible
    options.anneal = false;
    const auto schedule = scheduler.schedule(diamond_graph(), options);
    EXPECT_FALSE(schedule.feasible);
}

TEST(Scheduler, RespectsCoreClassConstraints) {
    const auto tk1 = platform::apalis_tk1();
    coordination::TaskGraph graph;
    coordination::Task task;
    task.name = "gpu_only";
    task.entry_fn = "k";
    task.versions["gpu"] = {{0.01, 0.1, 0.0, 0, "gpu kernel"}};
    graph.tasks.push_back(task);
    const coordination::Scheduler scheduler(tk1);
    const auto schedule = scheduler.schedule(graph, {});
    ASSERT_EQ(schedule.entries.size(), 1u);
    EXPECT_EQ(tk1.cores[schedule.entries[0].core].core_class, "gpu");
}

TEST(Scheduler, ThrowsWhenTaskFitsNoCore) {
    const auto nucleo = platform::nucleo_f091();
    coordination::TaskGraph graph;
    coordination::Task task;
    task.name = "gpu_only";
    task.entry_fn = "k";
    task.versions["gpu"] = {{0.01, 0.1, 0.0, 0, ""}};
    graph.tasks.push_back(task);
    const coordination::Scheduler scheduler(nucleo);
    EXPECT_THROW((void)scheduler.schedule(graph, {}), std::runtime_error);
}

TEST(Scheduler, PlatformEnergyIncludesBaseAndIdle) {
    const auto gr712 = platform::gr712rc();
    const coordination::Scheduler scheduler(gr712);
    coordination::Scheduler::Options options;
    options.anneal = false;
    const auto schedule = scheduler.schedule(diamond_graph(), options);
    const double horizon = 1.0;
    const double energy = schedule.platform_energy_j(gr712, horizon);
    // At least the base power over the horizon.
    EXPECT_GT(energy, gr712.base_power_w * horizon);
    // And more than the dynamic energy alone.
    EXPECT_GT(energy, schedule.dynamic_energy_j());
}

TEST(Rta, ClassicSchedulableSet) {
    // Liu & Layland style set, utilisation ~0.75: schedulable under RM.
    std::vector<coordination::PeriodicTask> tasks = {
        {"t1", 0.010, 0.050, 0.0},
        {"t2", 0.020, 0.100, 0.0},
        {"t3", 0.050, 0.200, 0.0},
    };
    const auto result = coordination::response_time_analysis(tasks);
    EXPECT_TRUE(result.schedulable);
    EXPECT_NEAR(result.response_times[0], 0.010, 1e-9);
    EXPECT_GE(result.response_times[2], 0.050);
}

TEST(Rta, OverloadedSetRejected) {
    std::vector<coordination::PeriodicTask> tasks = {
        {"t1", 0.040, 0.050, 0.0},
        {"t2", 0.040, 0.100, 0.0},
    };
    EXPECT_FALSE(coordination::response_time_analysis(tasks).schedulable);
}

// -- runtime ------------------------------------------------------------------------

TEST(Runtime, DeterministicReplayMatchesSchedule) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    coordination::Scheduler::Options options;
    options.anneal = false;
    const auto graph = diamond_graph();
    const auto schedule = scheduler.schedule(graph, options);
    const auto run = coordination::execute_schedule(graph, schedule, {});
    EXPECT_EQ(run.deadline_misses, 0);
    EXPECT_NEAR(run.makespan_s, schedule.makespan_s, 1e-9);
}

TEST(Runtime, JitterCanMissTightDeadlines) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    coordination::Scheduler::Options options;
    options.objective = coordination::Scheduler::Objective::kMakespan;
    options.anneal = false;
    const auto graph = diamond_graph();
    const auto schedule = scheduler.schedule(graph, options);

    coordination::RuntimeOptions runtime;
    runtime.jitter_sigma = 0.3;
    runtime.deadline_s = schedule.makespan_s * 1.001;  // no headroom
    const double ratio =
        coordination::deadline_success_ratio(graph, schedule, runtime, 200);
    EXPECT_LT(ratio, 1.0);
    EXPECT_GT(ratio, 0.0);

    runtime.deadline_s = schedule.makespan_s * 3.0;  // ample headroom
    const double relaxed =
        coordination::deadline_success_ratio(graph, schedule, runtime, 200);
    EXPECT_GT(relaxed, ratio);
}

// -- glue ---------------------------------------------------------------------------

TEST(Glue, SequentialDriverListsTasksInTopologicalOrder) {
    const auto graph = diamond_graph();
    const auto text = coordination::generate_glue(
        graph, {}, platform::jetson_tx2(),
        coordination::GlueStyle::kSequential);
    const auto pos_a = text.find("a_fn();");
    const auto pos_d = text.find("d_fn();");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_d, std::string::npos);
    EXPECT_LT(pos_a, pos_d);
    EXPECT_NE(text.find("tp_probe_begin"), std::string::npos);
}

TEST(Glue, RtemsVariantWiresSemaphoresForDeps) {
    const auto gr712 = platform::gr712rc();
    const coordination::Scheduler scheduler(gr712);
    coordination::Scheduler::Options options;
    options.anneal = false;
    const auto graph = diamond_graph();
    const auto schedule = scheduler.schedule(graph, options);
    const auto text = coordination::generate_glue(
        graph, schedule, gr712, coordination::GlueStyle::kRtems);
    EXPECT_NE(text.find("rtems_semaphore_obtain(tp_sem_a"),
              std::string::npos);
    EXPECT_NE(text.find("CONFIGURE_MAXIMUM_TASKS 4"), std::string::npos);
}

TEST(Glue, PosixVariantPinsAffinity) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    coordination::Scheduler::Options options;
    options.anneal = false;
    const auto graph = diamond_graph();
    const auto schedule = scheduler.schedule(graph, options);
    const auto text = coordination::generate_glue(
        graph, schedule, tx2, coordination::GlueStyle::kPosix);
    EXPECT_NE(text.find("pthread_attr_setaffinity_np"), std::string::npos);
    EXPECT_NE(text.find("sem_wait(&tp_done_a"), std::string::npos);
    EXPECT_NE(text.find("tp_set_core_opp("), std::string::npos);
}

// -- contracts ----------------------------------------------------------------------

TEST(Contracts, ProofTreeVerifiesAndMatchesAnalyser) {
    const auto app = usecases::make_camera_pill_app();
    const auto& core = app.platform.cores[0];

    const auto proof = contracts::scale_to_seconds(
        contracts::build_time_proof_cycles(app.program, "pill_delta",
                                           core.model),
        core.opp(2).freq_hz);
    EXPECT_TRUE(contracts::verify_proof(proof));

    const wcet::Analyser analyser(app.program);
    const auto wcet = analyser.analyse("pill_delta", core, 2);
    EXPECT_NEAR(proof.value, wcet.time_s, 1e-12);
}

TEST(Contracts, EnergyProofMatchesAnalyser) {
    const auto app = usecases::make_camera_pill_app();
    const auto& core = app.platform.cores[0];
    const auto proof = contracts::build_energy_proof_joules(
        app.program, "pill_delta", core, 1);
    EXPECT_TRUE(contracts::verify_proof(proof));

    const energy::Analyser analyser(app.program);
    const auto result = analyser.analyse("pill_delta", core, 1);
    EXPECT_NEAR(proof.value, result.wcec_j,
                1e-9 * std::max(1.0, result.wcec_j));
}

TEST(Contracts, TamperedProofRejected) {
    const auto app = usecases::make_camera_pill_app();
    const auto& core = app.platform.cores[0];
    auto proof = contracts::build_time_proof_cycles(app.program,
                                                    "pill_delta", core.model);
    ASSERT_TRUE(contracts::verify_proof(proof));
    proof.value *= 0.5;  // claim a tighter bound than the proof supports
    EXPECT_FALSE(contracts::verify_proof(proof));
}

TEST(Contracts, CertificateChecksBudgets) {
    const auto app = usecases::make_camera_pill_app();
    const auto& core = app.platform.cores[0];
    contracts::ContractInput input;
    input.poi = "delta";
    input.function = "pill_delta";
    input.program = &app.program;
    input.core = &core;
    input.opp_index = 2;
    input.time_budget_s = 10.0;  // generous: holds
    input.energy_budget_j = 1e-12;  // impossible: fails
    const auto certificate =
        contracts::check_contracts("pill", "camera-pill", {input});
    ASSERT_EQ(certificate.results.size(), 2u);
    EXPECT_TRUE(certificate.results[0].holds);
    EXPECT_FALSE(certificate.results[1].holds);
    EXPECT_FALSE(certificate.all_hold());
    EXPECT_TRUE(contracts::verify_certificate(certificate));
    EXPECT_NE(certificate.to_text().find("FAIL"), std::string::npos);
}

TEST(Contracts, MeasuredEvidenceFlagged) {
    contracts::ContractInput input;
    input.poi = "t";
    input.function = "f";
    input.measured_only = true;
    input.measured_time_s = 0.001;
    input.time_budget_s = 0.01;
    const auto certificate = contracts::check_contracts("app", "tx2", {input});
    ASSERT_EQ(certificate.results.size(), 1u);
    EXPECT_TRUE(certificate.results[0].holds);
    EXPECT_TRUE(certificate.results[0].measured_only);
    EXPECT_FALSE(certificate.fully_static());
    EXPECT_TRUE(contracts::verify_certificate(certificate));
}

// -- end-to-end workflows --------------------------------------------------------------

TEST(PredictableWorkflowE2E, CameraPillGreenCertificate) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 6;
    options.compiler.iterations = 6;
    options.scheduler.anneal_iterations = 100;
    const auto report = workflow.run(spec, options);

    EXPECT_TRUE(report.schedule.feasible);
    EXPECT_EQ(report.schedule.entries.size(), spec.tasks.size());
    EXPECT_TRUE(report.certificate.all_hold()) << report.certificate.to_text();
    EXPECT_TRUE(report.certificate.fully_static());
    EXPECT_TRUE(contracts::verify_certificate(report.certificate));
    EXPECT_FALSE(report.glue_code.empty());
    EXPECT_FALSE(report.fronts.empty());
    EXPECT_NE(report.summary().find("ALL CONTRACTS HOLD"),
              std::string::npos);
}

TEST(PredictableWorkflowE2E, RejectsComplexPlatform) {
    const auto app = usecases::make_uav_app();
    EXPECT_THROW(core::PredictableWorkflow(app.program, app.platform),
                 std::invalid_argument);
}

TEST(ComplexWorkflowE2E, UavTwoPassProducesMeasuredCertificate) {
    const auto app = usecases::make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);
    core::ComplexWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.profile_runs = 8;
    options.scheduler.anneal_iterations = 60;
    const auto report = workflow.run(spec, options);

    EXPECT_TRUE(report.schedule.feasible);
    EXPECT_FALSE(report.sequential_glue.empty());        // pass 1 artifact
    EXPECT_NE(report.sequential_glue.find("tp_probe_begin"),
              std::string::npos);
    EXPECT_FALSE(report.glue_code.empty());              // pass 2 artifact
    EXPECT_TRUE(report.certificate.all_hold()) << report.certificate.to_text();
    EXPECT_FALSE(report.certificate.fully_static());     // measured evidence
    EXPECT_TRUE(contracts::verify_certificate(report.certificate));
}

TEST(ComplexWorkflowE2E, RejectsPredictablePlatform) {
    const auto app = usecases::make_camera_pill_app();
    EXPECT_THROW(core::ComplexWorkflow(app.program, app.platform),
                 std::invalid_argument);
}

TEST(RunToolchain, DispatchesOnPlatformClass) {
    const auto pill = usecases::make_camera_pill_app();
    const auto pill_spec = csl::parse(pill.csl_source);
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal = false;
    const auto pill_report =
        core::run_toolchain(pill.program, pill.platform, pill_spec, options);
    EXPECT_TRUE(pill_report.certificate.fully_static());

    const auto uav = usecases::make_uav_app();
    const auto uav_spec = csl::parse(uav.csl_source);
    const auto uav_report =
        core::run_toolchain(uav.program, uav.platform, uav_spec, options);
    EXPECT_FALSE(uav_report.certificate.fully_static());
}

}  // namespace
