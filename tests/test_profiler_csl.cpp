// Tests for the dynamic profiler (PowProfiler) and a parameterised sweep of
// malformed CSL inputs (the front-end must reject each with a line-accurate
// error, never crash or mis-parse).
#include <gtest/gtest.h>

#include "csl/csl.hpp"
#include "ir/builder.hpp"
#include "profiler/pow_profiler.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

ir::Program noisy_program() {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(100);
    const auto addr = b.and_imm(i, 63);
    b.store(addr, b.mul(i, i));
    (void)b.load(addr);
    b.loop_end();
    b.ret(b.imm(0));
    ir::Program program;
    program.add(b.build());
    return program;
}

TEST(PowProfiler, EstimateOrderingInvariants) {
    const auto program = noisy_program();
    const auto tk1 = platform::apalis_tk1();
    profiler::PowProfiler prof(program, tk1.cores[0], 1, 5);
    const auto profile = prof.profile("f", profiler::zero_inputs(0), 40);

    EXPECT_EQ(profile.runs, 40);
    EXPECT_GT(profile.time_s.mean, 0.0);
    EXPECT_LE(profile.time_s.mean, profile.time_s.p95 * (1.0 + 1e-9));
    EXPECT_LE(profile.time_s.p95, profile.time_s.max * (1.0 + 1e-9));
    EXPECT_GT(profile.time_s.high_water_mark(), profile.time_s.max);
    EXPECT_GT(profile.energy_j.mean, 0.0);
    EXPECT_GT(profile.cycles.mean, 0.0);
}

TEST(PowProfiler, ComplexCoreShowsSpreadPredictableDoesNot) {
    const auto program = noisy_program();
    const auto tk1 = platform::apalis_tk1();
    profiler::PowProfiler complex_prof(program, tk1.cores[0], 1, 5);
    const auto complex_profile =
        complex_prof.profile("f", profiler::zero_inputs(0), 30);
    EXPECT_GT(complex_profile.time_s.stddev, 0.0);

    const auto nucleo = platform::nucleo_f091();
    profiler::PowProfiler predictable_prof(program, nucleo.cores[0], 1, 5);
    const auto predictable_profile =
        predictable_prof.profile("f", profiler::zero_inputs(0), 30);
    // Exactly repeatable up to floating-point accumulation noise.
    EXPECT_NEAR(predictable_profile.time_s.stddev, 0.0, 1e-15);
    EXPECT_NEAR(predictable_profile.time_s.mean,
                predictable_profile.time_s.max,
                1e-15);
}

TEST(PowProfiler, DeterministicForSameSeed) {
    const auto program = noisy_program();
    const auto tk1 = platform::apalis_tk1();
    profiler::PowProfiler a(program, tk1.cores[0], 1, 99);
    profiler::PowProfiler b(program, tk1.cores[0], 1, 99);
    const auto pa = a.profile("f", profiler::zero_inputs(0), 20);
    const auto pb = b.profile("f", profiler::zero_inputs(0), 20);
    EXPECT_DOUBLE_EQ(pa.time_s.mean, pb.time_s.mean);
    EXPECT_DOUBLE_EQ(pa.energy_j.max, pb.energy_j.max);
}

TEST(PowProfiler, SequentialPassCoversAllTasks) {
    const auto app = usecases::make_uav_app();
    profiler::PowProfiler prof(app.program, app.platform.cores[0], 1, 5);
    const std::vector<std::string> tasks = {"uav_capture", "uav_resize",
                                            "uav_detect"};
    const auto profiles =
        prof.profile_sequential(tasks, profiler::zero_inputs(0), 10);
    ASSERT_EQ(profiles.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(profiles[i].function, tasks[i]);
        EXPECT_GT(profiles[i].time_s.mean, 0.0);
    }
}

TEST(PowProfiler, HigherFrequencyProfilesFaster) {
    const auto program = noisy_program();
    const auto tk1 = platform::apalis_tk1();
    profiler::PowProfiler slow(program, tk1.cores[0], 0, 7);
    profiler::PowProfiler fast(program, tk1.cores[0], 3, 7);
    const auto ps = slow.profile("f", profiler::zero_inputs(0), 20);
    const auto pf = fast.profile("f", profiler::zero_inputs(0), 20);
    EXPECT_GT(ps.time_s.mean, pf.time_s.mean);
}

// -- CSL malformed-input sweep -------------------------------------------------

struct BadCsl {
    const char* description;
    const char* source;
};

const BadCsl kBadInputs[] = {
    {"empty input", ""},
    {"missing braces", "app x on p"},
    {"unclosed app block", "app x on p {"},
    {"task without entry", "app x on p { task t { } }"},
    {"task missing semicolon", "app x on p { task t { entry f } }"},
    {"bad time unit", "app x on p { task t { entry f; period 5lightyears; } }"},
    {"bad energy unit",
     "app x on p { task t { entry f; budget energy 5V; } }"},
    {"bad leakage number",
     "app x on p { task t { entry f; budget leakage much; } }"},
    {"unknown budget kind",
     "app x on p { task t { entry f; budget karma 3; } }"},
    {"unknown attribute", "app x on p { task t { entry f; colour red; } }"},
    {"unknown security level",
     "app x on p { task t { entry f; security quantum; } }"},
    {"flow without arrow", "app x on p { task t { entry f; } flow t; }"},
    {"flow to unknown task",
     "app x on p { task t { entry f; } flow t -> u; }"},
    {"after unknown task",
     "app x on p { task t { entry f; after ghost; } }"},
    {"duplicate task",
     "app x on p { task t { entry f; } task t { entry g; } }"},
    {"stray token after block", "app x on p { } trailing"},
    {"unexpected character", "app x on p { task t { entry f; } ~ }"},
    {"deadline garbage", "app x on p deadline never { }"},
};

class CslRejects : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CslRejects, MalformedInputThrowsCslError) {
    const auto& bad = kBadInputs[GetParam()];
    SCOPED_TRACE(bad.description);
    EXPECT_THROW((void)csl::parse(bad.source), csl::CslError)
        << "accepted: " << bad.description;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, CslRejects,
    ::testing::Range<std::size_t>(0, sizeof kBadInputs / sizeof kBadInputs[0]));

TEST(CslAccepts, CommentsWhitespaceAndMinimalApp) {
    const auto spec = csl::parse(
        "# leading comment\n\napp     tiny   on nucleo-f091\n{\n"
        "  task only { entry f; }  # trailing comment\n}\n");
    EXPECT_EQ(spec.name, "tiny");
    ASSERT_EQ(spec.tasks.size(), 1u);
    EXPECT_EQ(spec.tasks[0].entry, "f");
    EXPECT_DOUBLE_EQ(spec.deadline_s, 0.0);
    EXPECT_LT(spec.tasks[0].time_budget_s, 0.0);  // no contract
}

TEST(CslAccepts, LongFlowChainsAddEachEdgeOnce) {
    const auto spec = csl::parse(R"(
app chain on p {
  task a { entry fa; }
  task b { entry fb; }
  task c { entry fc; }
  flow a -> b -> c;
  flow a -> b;  # duplicate edge must not double
}
)");
    ASSERT_EQ(spec.tasks[1].deps.size(), 1u);
    EXPECT_EQ(spec.tasks[1].deps[0], "a");
    ASSERT_EQ(spec.tasks[2].deps.size(), 1u);
    EXPECT_EQ(spec.tasks[2].deps[0], "b");
}

TEST(CslAccepts, MultipleAftersAndCommaList) {
    const auto spec = csl::parse(R"(
app m on p {
  task a { entry fa; }
  task b { entry fb; }
  task c { entry fc; after a, b; }
}
)");
    EXPECT_EQ(spec.tasks[2].deps.size(), 2u);
}

TEST(CslSkeleton, CarriesTimingFieldsIntoGraph) {
    const auto spec = csl::parse(R"(
app s on p {
  task a { entry fa; period 100ms; deadline 80ms; }
  task b { entry fb; after a; }
}
)");
    const auto graph = spec.skeleton();
    ASSERT_EQ(graph.tasks.size(), 2u);
    EXPECT_DOUBLE_EQ(graph.tasks[0].period_s, 0.1);
    EXPECT_DOUBLE_EQ(graph.tasks[0].deadline_s, 0.08);
    EXPECT_EQ(graph.tasks[1].deps, std::vector<std::string>{"a"});
    EXPECT_EQ(graph.app_name, "s");
}

}  // namespace
