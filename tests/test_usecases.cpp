// Functional tests of the use-case kernels: the ciphers round-trip, the
// compressor is lossless, the CNN is deterministic — all executing on the
// simulated boards.
#include <gtest/gtest.h>

#include <set>

#include "ir/validate.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "usecases/apps.hpp"
#include "usecases/kernels.hpp"

namespace {

using namespace teamplay;
using namespace teamplay::usecases;

TEST(CameraPill, ProgramValidates) {
    const auto app = make_camera_pill_app();
    EXPECT_EQ(app.platform.name, "camera-pill");
    EXPECT_TRUE(app.platform.predictable());
    EXPECT_NE(app.program.find("pill_encrypt"), nullptr);
}

TEST(CameraPill, XteaRoundTripsOverBlockCalls) {
    const auto app = make_camera_pill_app();
    sim::Machine m(app.program, app.platform.cores[0], 2);
    stage_xtea_key(m, {0xDEADBEEF, 0x01234567, 0x89ABCDEF, 0x42424242});

    support::Rng rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        const ir::Word v0 = rng.next() & kMask32;
        const ir::Word v1 = rng.next() & kMask32;
        const auto enc =
            m.run("pill_xtea_block", std::vector<ir::Word>{v0, v1});
        const ir::Word e0 = enc.ret_value;
        const ir::Word e1 = m.peek(pill::kSpill);
        EXPECT_TRUE(e0 != v0 || e1 != v1);  // actually encrypts
        const auto dec =
            m.run("pill_xtea_unblock", std::vector<ir::Word>{e0, e1});
        EXPECT_EQ(dec.ret_value, v0);
        EXPECT_EQ(m.peek(pill::kSpill), v1);
    }
}

TEST(CameraPill, XteaMatchesReferenceVector) {
    // Reference XTEA (32 rounds): plaintext 0x01234567/0x89ABCDEF with key
    // {0,1,2,3} -- computed with the canonical Wheeler/Needham C code.
    const auto reference = [](std::uint32_t v[2], const std::uint32_t k[4]) {
        std::uint32_t v0 = v[0];
        std::uint32_t v1 = v[1];
        std::uint32_t sum = 0;
        const std::uint32_t delta = 0x9E3779B9;
        for (int i = 0; i < 32; ++i) {
            v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]);
            sum += delta;
            v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^
                  (sum + k[(sum >> 11) & 3]);
        }
        v[0] = v0;
        v[1] = v1;
    };
    std::uint32_t v[2] = {0x01234567, 0x89ABCDEF};
    const std::uint32_t k[4] = {0, 1, 2, 3};
    reference(v, k);

    const auto app = make_camera_pill_app();
    sim::Machine m(app.program, app.platform.cores[0], 0);
    stage_xtea_key(m, {0, 1, 2, 3});
    const auto run = m.run("pill_xtea_block",
                           std::vector<ir::Word>{0x01234567, 0x89ABCDEF});
    EXPECT_EQ(static_cast<std::uint32_t>(run.ret_value), v[0]);
    EXPECT_EQ(static_cast<std::uint32_t>(m.peek(pill::kSpill)), v[1]);
}

TEST(CameraPill, PipelineEndToEndProducesCompressedEncryptedFrame) {
    const auto app = make_camera_pill_app();
    sim::Machine m(app.program, app.platform.cores[0], 2);
    stage_xtea_key(m, {1, 2, 3, 4});
    m.poke(pill::kState, 12345);

    (void)m.run("pill_capture", {});
    (void)m.run("pill_delta", {});
    const auto comp = m.run("pill_compress", {});
    EXPECT_GT(comp.ret_value, 0);
    EXPECT_LE(comp.ret_value, pill::kCompCap);
    (void)m.run("pill_encrypt", {});
    const auto tx = m.run("pill_transmit", {});
    EXPECT_NE(tx.ret_value, 0);  // checksum over encrypted payload

    // Encrypted buffer differs from plaintext.
    const auto len = static_cast<std::size_t>(m.peek(pill::kLen));
    int diffs = 0;
    for (std::size_t i = 0; i < len; ++i)
        if (m.peek(static_cast<std::size_t>(pill::kComp) + i) !=
            m.peek(static_cast<std::size_t>(pill::kEnc) + i))
            ++diffs;
    EXPECT_GT(diffs, static_cast<int>(len / 2));
}

TEST(Rle, LosslessRoundTripOnSyntheticBuffers) {
    ir::Program program;
    program.memory_words = 4096;
    constexpr std::int64_t kSrc = 100;
    constexpr std::int64_t kCompBuf = 600;
    constexpr std::int64_t kOut = 1700;
    constexpr std::int64_t kLenAddr = 16;
    constexpr std::int64_t kN = 200;
    program.add(make_rle_compress("comp", kSrc, kCompBuf, kN, kLenAddr));
    program.add(make_rle_decompress("decomp", kCompBuf, kOut, kLenAddr, kN));

    const auto nucleo = platform::nucleo_f091();
    support::Rng rng(7);
    for (int trial = 0; trial < 6; ++trial) {
        sim::Machine m(program, nucleo.cores[0], 0);
        // Runs of random length: realistic delta-image content.
        std::vector<ir::Word> data;
        while (data.size() < kN) {
            const ir::Word value = rng.range(0, 5) == 0 ? rng.range(1, 255)
                                                        : 0;
            const auto run_len =
                static_cast<std::size_t>(rng.range(1, 300));
            for (std::size_t r = 0; r < run_len && data.size() < kN; ++r)
                data.push_back(value);
        }
        m.poke_span(kSrc, data);
        const auto comp = m.run("comp", {});
        ASSERT_GT(comp.ret_value, 0);
        const auto decomp = m.run("decomp", {});
        ASSERT_EQ(decomp.ret_value, kN) << "decompressed length mismatch";
        const auto out = m.peek_span(kOut, kN);
        EXPECT_EQ(out, data) << "round trip corrupted data (trial " << trial
                             << ")";
    }
}

TEST(Rle, CompressesLowEntropyBuffers) {
    ir::Program program;
    program.memory_words = 2048;
    program.add(make_rle_compress("comp", 100, 600, 256, 16));
    const auto nucleo = platform::nucleo_f091();
    sim::Machine m(program, nucleo.cores[0], 0);
    // All zeros: 256 words -> one capped run of 255 plus a run of 1.
    const auto comp = m.run("comp", {});
    EXPECT_EQ(comp.ret_value, 4);
    EXPECT_EQ(m.peek(600), 255);  // first run capped at 255
    EXPECT_EQ(m.peek(601), 0);
    EXPECT_EQ(m.peek(602), 1);
    EXPECT_EQ(m.peek(603), 0);
}

TEST(Crc32, MatchesReferenceImplementation) {
    ir::Program program;
    program.memory_words = 1024;
    program.add(make_crc32("crc", 100, 16, 64, 24));
    const auto nucleo = platform::nucleo_f091();
    sim::Machine m(program, nucleo.cores[0], 0);

    const std::vector<ir::Word> data = {'T', 'e', 'a', 'm', 'P', 'l', 'a',
                                        'y'};
    m.poke_span(100, data);
    m.poke(16, static_cast<ir::Word>(data.size()));
    const auto run = m.run("crc", {});

    // Reference bitwise CRC-32.
    std::uint32_t crc = 0xFFFFFFFF;
    for (const auto word : data) {
        crc ^= static_cast<std::uint32_t>(word & 255);
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (0xEDB88320U & (~(crc & 1U) + 1U));
    }
    crc ^= 0xFFFFFFFF;
    EXPECT_EQ(static_cast<std::uint32_t>(run.ret_value), crc);
}

TEST(Space, PacketizerFramesAndChecksums) {
    const auto app = make_space_app();
    sim::Machine m(app.program, app.platform.cores[0], 2);
    m.poke(space::kState, 99);
    (void)m.run("sw_acquire", {});
    (void)m.run("sw_bin", {});
    const auto comp = m.run("sw_compress", {});
    ASSERT_GT(comp.ret_value, 0);
    const auto pkt = m.run("sw_packetize", {});
    ASSERT_GT(pkt.ret_value, 0);

    // Validate packet structure: header, payload, additive checksum.
    const auto total = static_cast<std::size_t>(m.peek(space::kPktLen));
    const std::size_t stride =
        static_cast<std::size_t>(space::kPayloadWords) + 3;
    ASSERT_EQ(total % stride, 0u);
    for (std::size_t p = 0; p * stride < total; ++p) {
        const std::size_t base =
            static_cast<std::size_t>(space::kPkt) + p * stride;
        EXPECT_EQ(m.peek(base), 0xFE);                       // dest address
        EXPECT_EQ(m.peek(base + 1), static_cast<ir::Word>(p));  // seq
        ir::Word sum = 0;
        for (std::size_t j = 0; j < space::kPayloadWords; ++j)
            sum += m.peek(base + 2 + j);
        EXPECT_EQ(m.peek(base + 2 + space::kPayloadWords),
                  sum & kMask32);
    }
}

TEST(Space, TelemetryChainIndependentOfImageChain) {
    const auto app = make_space_app();
    sim::Machine m(app.program, app.platform.cores[1], 1);
    (void)m.run("sw_sensor", {});
    (void)m.run("sw_tele_len", {});
    const auto tx = m.run("sw_telemetry", {});
    EXPECT_NE(tx.ret_value, 0);
}

TEST(Uav, DetectionFindsEdgesInSyntheticScene) {
    const auto app = make_uav_app("apalis-tk1");
    const auto& big = app.platform.cores[0];
    sim::Machine m(app.program, big, 1, /*seed=*/5);
    m.poke(uav::kState, 31337);
    (void)m.run("uav_capture", {});
    (void)m.run("uav_resize", {});

    // Paint a bright rectangle ("lifeboat") into the small image: strong
    // edges the Sobel detector must find.
    for (std::int64_t y = 8; y < 14; ++y)
        for (std::int64_t x = 10; x < 20; ++x)
            m.poke(static_cast<std::size_t>(uav::kSmall + y * uav::kSmallW +
                                            x),
                   255 * 4);
    const auto detect = m.run("uav_detect", {});
    EXPECT_GT(detect.ret_value, 8);

    const auto track = m.run("uav_track", {});
    EXPECT_GT(track.ret_value, 0);
    // Centroid near the rectangle centre (x~15/32, y~11/24 in Q8).
    const auto cx = m.peek(uav::kTrack);
    const auto cy = m.peek(uav::kTrack + 1);
    EXPECT_NEAR(static_cast<double>(cx), 15.0 * 256 / uav::kSmallW, 40.0);
    EXPECT_NEAR(static_cast<double>(cy), 11.0 * 256 / uav::kSmallH, 40.0);

    (void)m.run("uav_encode", {});
    EXPECT_EQ(m.peek(uav::kDlLen), 4);
    const auto dl = m.run("uav_downlink", {});
    EXPECT_NE(dl.ret_value, 0);
}

TEST(Parking, CnnDeterministicAndInRange) {
    const auto app = make_parking_app(/*on_m0=*/true);
    sim::Machine m(app.program, app.platform.cores[0], 2);
    stage_parking_weights(m);
    m.poke(parking::kState, 777);

    (void)m.run("park_capture", {});
    (void)m.run("park_conv", {});
    (void)m.run("park_pool", {});
    (void)m.run("park_fc1", {});
    (void)m.run("park_fc2", {});
    const auto decide = m.run("park_decide", {});
    EXPECT_GE(decide.ret_value, 0);
    EXPECT_LT(decide.ret_value, parking::kClasses);

    // Same input -> same class (re-stage and re-run).
    sim::Machine m2(app.program, app.platform.cores[0], 2);
    stage_parking_weights(m2);
    m2.poke(parking::kState, 777);
    for (const auto* fn : {"park_capture", "park_conv", "park_pool",
                           "park_fc1", "park_fc2", "park_decide"})
        (void)m2.run(fn, {});
    EXPECT_EQ(m2.peek(parking::kResult), m.peek(parking::kResult));
}

TEST(Parking, DifferentScenesCanYieldDifferentClasses) {
    const auto app = make_parking_app(/*on_m0=*/true);
    std::set<ir::Word> classes;
    for (const ir::Word seed : {1, 99, 5000, 424242, 31415}) {
        sim::Machine m(app.program, app.platform.cores[0], 2);
        stage_parking_weights(m);
        m.poke(parking::kState, seed);
        for (const auto* fn : {"park_capture", "park_conv", "park_pool",
                               "park_fc1", "park_fc2", "park_decide"})
            (void)m.run(fn, {});
        classes.insert(m.peek(parking::kResult));
    }
    EXPECT_GE(classes.size(), 1u);  // degenerate collapse would be a bug
}

TEST(UseCases, AllProgramsValidate) {
    for (const auto& app :
         {make_camera_pill_app(), make_space_app(), make_uav_app(),
          make_parking_app(true), make_parking_app(false)}) {
        ir::Program copy = app.program;  // validate needs no ownership
        EXPECT_TRUE(ir::validate(copy).empty())
            << "validation failed for " << app.name;
    }
}

}  // namespace
