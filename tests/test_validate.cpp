// Direct enumeration of every ir::validate rejection class (DESIGN.md
// §13): one hand-built invalid program per class, each breaking exactly
// one rule.  The fuzz mutator's invalidity injections rely on these
// classes (fuzz/mutator.hpp maps enum values onto them 1:1), so an oracle
// failure distinguishes "the generator produced garbage" from "the
// validator regressed": if these pass, the validator is intact.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/program.hpp"
#include "ir/validate.hpp"

namespace {

using namespace teamplay;

/// A small valid program: main_fn calls leaf, both with live returns.
ir::Program base_program() {
    ir::Program program;
    program.memory_words = 128;
    ir::FunctionBuilder leaf("leaf", 1);
    leaf.ret(leaf.add_imm(leaf.param(0), 1));
    program.add(leaf.build());
    ir::FunctionBuilder main_fn("main_fn", 2);
    const auto sum = main_fn.add(main_fn.param(0), main_fn.param(1));
    const auto addr = main_fn.imm(16);
    main_fn.store(addr, sum, 4);
    const auto loaded = main_fn.load(addr, 4);
    main_fn.ret(main_fn.call("leaf", {loaded}));
    program.add(main_fn.build());
    return program;
}

bool any_error_contains(const std::vector<std::string>& errors,
                        const std::string& needle) {
    for (const auto& error : errors)
        if (error.find(needle) != std::string::npos) return true;
    return false;
}

/// First block instruction of a function satisfying `pred`.
template <typename Pred>
ir::Instr* find_instr(ir::Function& fn, Pred pred) {
    ir::Instr* found = nullptr;
    ir::for_each_instr(*fn.body, [&](ir::Instr& instr) {
        if (found == nullptr && pred(instr)) found = &instr;
    });
    return found;
}

TEST(Validate, BaseProgramIsClean) {
    EXPECT_TRUE(ir::validate(base_program()).empty());
}

TEST(Validate, RejectsRegisterBeyondRegCount) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto* instr =
        find_instr(fn, [](const ir::Instr& i) { return ir::writes_dst(i.op); });
    ASSERT_NE(instr, nullptr);
    instr->dst = static_cast<ir::Reg>(fn.reg_count + 3);
    EXPECT_TRUE(any_error_contains(ir::validate(program), "out of range"));
}

TEST(Validate, RejectsMissingDstRegister) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto* instr =
        find_instr(fn, [](const ir::Instr& i) { return ir::writes_dst(i.op); });
    ASSERT_NE(instr, nullptr);
    instr->dst = ir::kNoReg;
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "missing register"));
}

TEST(Validate, RejectsReturnRegisterBeyondRegCount) {
    auto program = base_program();
    auto& fn = program.functions.at("leaf");
    fn.ret_reg = static_cast<ir::Reg>(fn.reg_count + 7);
    EXPECT_TRUE(any_error_contains(ir::validate(program),
                                   "out of range for return value"));
}

TEST(Validate, RejectsCallToUndefinedFunction) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    fn.body->children.push_back(
        ir::Node::call("missing_fn", {}, ir::kNoReg));
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "undefined function"));
}

TEST(Validate, RejectsCallArityMismatch) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    // leaf takes 1 parameter; pass 2.
    fn.body->children.push_back(ir::Node::call(
        "leaf", {static_cast<ir::Reg>(0), static_cast<ir::Reg>(1)},
        ir::kNoReg));
    EXPECT_TRUE(any_error_contains(ir::validate(program), "expected"));
}

TEST(Validate, RejectsDynamicLoopWithNonPositiveBound) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto loop = std::make_unique<ir::Node>();
    loop->kind = ir::NodeKind::kLoop;
    loop->trip_reg = 0;
    loop->bound = 0;
    loop->body = ir::Node::block({});
    fn.body->children.push_back(std::move(loop));
    EXPECT_TRUE(any_error_contains(ir::validate(program),
                                   "dynamic loop requires bound > 0"));
}

TEST(Validate, RejectsStaticLoopBoundBelowTrip) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto loop = std::make_unique<ir::Node>();
    loop->kind = ir::NodeKind::kLoop;
    loop->trip = 5;
    loop->bound = 2;
    loop->body = ir::Node::block({});
    fn.body->children.push_back(std::move(loop));
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "below trip count"));
}

TEST(Validate, RejectsIfWithoutThenBranch) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto node = std::make_unique<ir::Node>();
    node->kind = ir::NodeKind::kIf;
    node->cond = 0;
    fn.body->children.push_back(std::move(node));
    EXPECT_TRUE(any_error_contains(ir::validate(program),
                                   "if node without then branch"));
}

TEST(Validate, RejectsLoopWithoutBody) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto node = std::make_unique<ir::Node>();
    node->kind = ir::NodeKind::kLoop;
    node->trip = 1;
    node->bound = 1;
    fn.body->children.push_back(std::move(node));
    EXPECT_TRUE(any_error_contains(ir::validate(program),
                                   "loop node without body"));
}

TEST(Validate, RejectsParamCountExceedingRegCount) {
    auto program = base_program();
    auto& fn = program.functions.at("leaf");
    fn.param_count = fn.reg_count + 1;
    EXPECT_TRUE(any_error_contains(ir::validate(program),
                                   "param_count exceeds reg_count"));
}

TEST(Validate, RejectsDirectRecursion) {
    auto program = base_program();
    auto& fn = program.functions.at("leaf");
    fn.body->children.push_back(
        ir::Node::call("leaf", {static_cast<ir::Reg>(0)}, ir::kNoReg));
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "recursion detected"));
}

TEST(Validate, RejectsMutualRecursionCycle) {
    auto program = base_program();
    // leaf -> main_fn -> leaf closes a cycle through the existing call.
    auto& fn = program.functions.at("leaf");
    fn.body->children.push_back(ir::Node::call(
        "main_fn", {static_cast<ir::Reg>(0), static_cast<ir::Reg>(0)},
        ir::kNoReg));
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "recursion detected"));
}

TEST(Validate, RejectsMapKeyNameMismatch) {
    auto program = base_program();
    program.functions["alias"] = program.functions.at("leaf");
    EXPECT_TRUE(any_error_contains(ir::validate(program),
                                   "does not match function name"));
}

TEST(Validate, RejectsMemoryOffsetBeyondMemoryWords) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto* load = find_instr(
        fn, [](const ir::Instr& i) { return i.op == ir::Opcode::kLoad; });
    ASSERT_NE(load, nullptr);
    load->imm = static_cast<ir::Word>(program.memory_words) + 5;
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "memory offset"));
}

TEST(Validate, RejectsMemoryOffsetBelowNegatedMemoryWords) {
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto* store = find_instr(
        fn, [](const ir::Instr& i) { return i.op == ir::Opcode::kStore; });
    ASSERT_NE(store, nullptr);
    store->imm = -static_cast<ir::Word>(program.memory_words) - 1;
    EXPECT_TRUE(
        any_error_contains(ir::validate(program), "memory offset"));
}

TEST(Validate, AcceptsNegativeOffsetWithinMemoryWords) {
    // Negative displacements against a large-enough base are legal (the
    // UAV kernels use them); only magnitudes >= memory_words are static
    // nonsense.
    auto program = base_program();
    auto& fn = program.functions.at("main_fn");
    auto* load = find_instr(
        fn, [](const ir::Instr& i) { return i.op == ir::Opcode::kLoad; });
    ASSERT_NE(load, nullptr);
    load->imm = -8;
    EXPECT_TRUE(ir::validate(program).empty());
}

TEST(Validate, RejectsMissingBody) {
    auto program = base_program();
    program.functions.at("leaf").body.reset();
    EXPECT_TRUE(any_error_contains(ir::validate(program), "missing body"));
}

}  // namespace
