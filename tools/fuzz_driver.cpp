// fuzz_driver: the generative-fuzzing entry point (DESIGN.md §13).
//
// Replay one seed or sweep many: every scenario is generated from its
// seed, run through the differential oracle's tier sweep, and its
// mutation obligations checked (semantic mutants must keep fingerprints
// and report bytes; invalid mutants must be rejected by ir::validate).
// One FUZZ-REPLAY line per scenario goes to stdout (and --log FILE); on
// any failure the driver prints the exact reproduction command and exits
// non-zero after the sweep completes — CI greps the log, a human greps
// the seed.
//
// Usage:
//   fuzz_driver --seed 0xDEADBEEF          replay one seed
//   fuzz_driver --count 50                 sweep 50 seeds from the default
//   fuzz_driver --seed 7 --count 50        sweep 50 seeds from 7
//   fuzz_driver --budget-s 60              sweep until the wall budget
//   fuzz_driver --log replay.log           also append lines to a file
//   fuzz_driver --loopback                 include the net/loopback tier
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/replay.hpp"
#include "ir/fingerprint.hpp"
#include "ir/validate.hpp"
#include "support/rng.hpp"

namespace {

using namespace teamplay;

struct DriverOptions {
    std::uint64_t base_seed = 1;
    std::size_t count = 1;
    double budget_s = 0.0;  ///< 0 = no wall-clock budget (count rules)
    std::string log_path;
    bool loopback = false;
};

void usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--seed S] [--count N] [--budget-s T] [--log FILE]"
                 " [--loopback]\n";
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
    try {
        return std::stoull(text, nullptr, 0);  // base 0: 0x... or decimal
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// Entry fingerprints of a scenario's program, in task order.
std::vector<std::uint64_t> entry_fingerprints(
    const ir::Program& program, const std::vector<std::string>& entries) {
    std::vector<std::uint64_t> prints;
    prints.reserve(entries.size());
    for (const auto& entry : entries)
        prints.push_back(ir::structural_fingerprint(program, entry));
    return prints;
}

/// Run one seed end to end.  Returns the record that was logged.
fuzz::ReplayRecord run_one(std::uint64_t seed,
                           const fuzz::ProgramGenerator& generator,
                           const fuzz::DifferentialOracle& oracle) {
    fuzz::ReplayRecord record;
    record.seed = seed;
    try {
        const auto scenario = generator.scenario(seed);

        // Tier sweep: every execution tier must agree byte-for-byte.
        const auto result = oracle.check(scenario);
        if (!result.ok()) {
            record.status = "divergence";
            record.detail = result.divergence->to_string();
            return record;
        }

        const auto prints =
            entry_fingerprints(scenario.program, scenario.entries);

        // Semantic mutants: fingerprints must not move, the mutant must
        // stay valid, and — through ONE engine's fingerprint-keyed cache —
        // the mutant's report must be byte-identical to the baseline
        // (see fuzz::scenario_request).  The mutation RNG derives from the
        // seed, so a replay applies the identical mutations.
        core::ScenarioEngine shared_engine;
        const auto baseline_bytes =
            fuzz::canonical_bytes(shared_engine.run(fuzz::scenario_request(
                scenario, scenario.program, oracle.config().options)));
        support::Rng rng(seed ^ 0x5EED5EED5EED5EEDull);
        for (std::size_t m = 0; m < fuzz::kNumSemanticMutations; ++m) {
            const auto mutation = static_cast<fuzz::SemanticMutation>(m);
            ir::Program mutant = scenario.program;
            if (!fuzz::apply_semantic(mutant, scenario.entries.front(),
                                      mutation, rng))
                continue;  // no applicable site: vacuously fine
            const char* broken = nullptr;
            if (!ir::validate(mutant).empty()) {
                broken = "mutant-invalid";
            } else if (entry_fingerprints(mutant, scenario.entries) !=
                       prints) {
                broken = "fingerprint-moved";
            } else if (fuzz::canonical_bytes(shared_engine.run(
                           fuzz::scenario_request(
                               scenario, mutant,
                               oracle.config().options))) !=
                       baseline_bytes) {
                broken = "report-bytes-moved";
            }
            if (broken != nullptr) {
                record.status = "identity-broken";
                record.detail = std::string("mutation=") +
                                std::string(fuzz::name(mutation)) + " " +
                                broken;
                return record;
            }
        }

        // Invalid mutants: ir::validate must reject every one.
        for (std::size_t m = 0; m < fuzz::kNumInvalidMutations; ++m) {
            const auto mutation = static_cast<fuzz::InvalidMutation>(m);
            ir::Program mutant = scenario.program;
            if (!fuzz::inject_invalid(mutant, mutation, rng)) continue;
            if (ir::validate(mutant).empty()) {
                record.status = "invalid-accepted";
                record.detail = std::string("mutation=") +
                                std::string(fuzz::name(mutation));
                return record;
            }
        }

        record.status = "ok";
        record.detail = "tiers=" + std::to_string(result.tiers.size());
    } catch (const std::exception& error) {
        record.status = "error";
        record.detail = error.what();
    }
    return record;
}

}  // namespace

int main(int argc, char** argv) {
    DriverOptions options;
    bool explicit_count = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (arg == "--seed") {
            const auto text = value();
            const auto seed = text ? parse_u64(*text) : std::nullopt;
            if (!seed) {
                usage(argv[0]);
                return 2;
            }
            options.base_seed = *seed;
        } else if (arg == "--count") {
            const auto text = value();
            const auto count = text ? parse_u64(*text) : std::nullopt;
            if (!count) {
                usage(argv[0]);
                return 2;
            }
            options.count = static_cast<std::size_t>(*count);
            explicit_count = true;
        } else if (arg == "--budget-s") {
            const auto text = value();
            if (!text) {
                usage(argv[0]);
                return 2;
            }
            try {
                options.budget_s = std::stod(*text);
            } catch (const std::exception&) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--log") {
            const auto text = value();
            if (!text) {
                usage(argv[0]);
                return 2;
            }
            options.log_path = *text;
        } else if (arg == "--loopback") {
            options.loopback = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    const fuzz::ProgramGenerator generator;
    fuzz::OracleConfig oracle_config;
    oracle_config.loopback = options.loopback;
    const fuzz::DifferentialOracle oracle(oracle_config);
    fuzz::ReplayLog log(options.log_path);

    const auto start = std::chrono::steady_clock::now();
    const auto budget_left = [&] {
        if (options.budget_s <= 0.0) return true;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count() < options.budget_s;
    };

    // Budget mode sweeps until the wall clock runs out; count mode runs a
    // fixed number of seeds.  Both walk consecutive seeds from the base so
    // any failure replays as `--seed <that seed>` alone.
    const bool budget_mode = options.budget_s > 0.0 && !explicit_count;
    std::size_t ran = 0;
    std::size_t failures = 0;
    for (std::uint64_t seed = options.base_seed;
         budget_mode ? budget_left()
                     : (ran < options.count && budget_left());
         ++seed, ++ran) {
        const auto record = run_one(seed, generator, oracle);
        log.append(record);
        std::cout << fuzz::format_record(record) << "\n";
        if (record.failed()) {
            ++failures;
            std::cout << "repro: "
                      << fuzz::repro_command(record.seed, options.loopback)
                      << "\n";
            break;  // first failure ends the sweep: the seed is the prize
        }
    }

    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    std::cout << "fuzz_driver: " << ran + (failures != 0 ? 1 : 0)
              << " scenario(s), " << failures << " failure(s), "
              << elapsed.count() << "s\n";
    return failures == 0 ? 0 : 1;
}
