// Experiment F1 (Fig. 1): the predictable-architecture workflow end to end.
//
// Validates that every box of the figure produces its artifact on the camera
// pill application — CSL front-end, multi-criteria compiler with the three
// analysers, coordination (schedule + glue), contract system (verified
// certificate) — and reports per-stage toolchain latency.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/scenario_engine.hpp"
#include "energy/analyser.hpp"
#include "security/taint.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"
#include "wcet/analyser.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

void print_table() {
    const auto app = make_camera_pill_app();

    std::puts("=== F1: predictable workflow stages (Fig. 1) ===");
    auto t0 = std::chrono::steady_clock::now();
    const auto spec = csl::parse(app.csl_source);
    std::printf("%-38s %10s   tasks=%zu, POIs with budgets=%zu\n",
                "CSL front-end", support::format_time(seconds_since(t0)).c_str(),
                spec.tasks.size(), spec.tasks.size());

    const auto& m0 = app.platform.cores[0];
    t0 = std::chrono::steady_clock::now();
    const wcet::Analyser wcet_analyser(app.program);
    double total_wcet = 0.0;
    for (const auto& task : spec.tasks)
        total_wcet += wcet_analyser.analyse(task.entry, m0, 2).time_s;
    std::printf("%-38s %10s   pipeline WCET=%s\n", "WCET analyser (aiT role)",
                support::format_time(seconds_since(t0)).c_str(),
                support::format_time(total_wcet).c_str());

    t0 = std::chrono::steady_clock::now();
    const energy::Analyser energy_analyser(app.program);
    double total_wcec = 0.0;
    for (const auto& task : spec.tasks)
        total_wcec += energy_analyser.analyse(task.entry, m0, 2).wcec_j;
    std::printf("%-38s %10s   pipeline WCEC=%s\n", "EnergyAnalyser",
                support::format_time(seconds_since(t0)).c_str(),
                support::format_energy(total_wcec).c_str());

    t0 = std::chrono::steady_clock::now();
    int leaky_tasks = 0;
    for (const auto& task : spec.tasks) {
        const auto report = security::analyze_taint(
            app.program, *app.program.find(task.entry));
        leaky_tasks += report.leaky() ? 1 : 0;
    }
    std::printf("%-38s %10s   leaky tasks=%d\n", "SecurityAnalyser",
                support::format_time(seconds_since(t0)).c_str(), leaky_tasks);

    t0 = std::chrono::steady_clock::now();
    core::ScenarioEngine engine;
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.compiler.population = 10;
    request.options.compiler.iterations = 10;
    const auto report = engine.run(request);
    std::printf("%-38s %10s   versions=%zu fronts\n",
                "multi-criteria compiler + coordination",
                support::format_time(seconds_since(t0)).c_str(),
                report.fronts.size());

    std::printf("%-38s %10s   %s, %s\n", "contract system",
                "-",
                report.certificate.all_hold() ? "all contracts hold"
                                              : "VIOLATION",
                contracts::verify_certificate(report.certificate)
                    ? "proofs verified"
                    : "PROOF ERROR");
    std::printf("%-38s %10s   glue=%zu bytes, schedule feasible=%s\n\n",
                "certified coordinated binary", "-",
                report.glue_code.size(),
                report.schedule.feasible ? "yes" : "no");
}

void BM_Fig1EndToEnd(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.compiler.population = static_cast<int>(state.range(0));
    request.options.compiler.iterations = static_cast<int>(state.range(0));
    for (auto _ : state) {
        // A fresh engine per iteration: cold evaluation cache, so this
        // measures the full analysis cost like the legacy driver did.
        core::ScenarioEngine engine;
        benchmark::DoNotOptimize(engine.run(request));
    }
}
BENCHMARK(BM_Fig1EndToEnd)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Fig1EndToEndWarmCache(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.compiler.population = static_cast<int>(state.range(0));
    request.options.compiler.iterations = static_cast<int>(state.range(0));
    core::ScenarioEngine engine;  // shared: per-key analyses memoised
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run(request));
}
BENCHMARK(BM_Fig1EndToEndWarmCache)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CslParse(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    for (auto _ : state)
        benchmark::DoNotOptimize(csl::parse(app.csl_source));
}
BENCHMARK(BM_CslParse)->Unit(benchmark::kMicrosecond);

void BM_CertificateVerify(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::ScenarioEngine engine;
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.compiler.population = 4;
    request.options.compiler.iterations = 4;
    const auto report = engine.run(request);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            contracts::verify_certificate(report.certificate));
}
BENCHMARK(BM_CertificateVerify)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
