// Experiment E1: ScenarioEngine batch throughput.
//
// Runs a mixed batch of predictable (Fig. 1) and complex (Fig. 2) scenarios
// — every built-in use case times several option variants — through
// `ScenarioEngine::run_all` with a worker pool and a shared evaluation
// cache, against the sequential legacy path (one fresh single-scenario
// driver per request, no sharing).  Reports scenarios/sec for both, the
// speedup, the cache hit ratio, and verifies that every certificate is
// byte-identical between the two paths — the engine accelerates the
// toolchain without changing a single analysed bound.
//
// Future PRs extend this batch (more platforms, sharded sweeps) and track
// the scenarios/sec trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/scenario_engine.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct Batch {
    std::vector<UseCaseApp> apps;            ///< owns programs/platforms
    std::vector<core::ScenarioRequest> requests;
};

/// A mixed batch: 4 apps (2 predictable, 2 complex) x 3 option variants.
/// Variants share each app's analysis keys (only scheduling options
/// differ), which is the redundancy real parameter sweeps have — exactly
/// what the evaluation cache exploits.
Batch make_batch() {
    Batch batch;
    batch.apps.push_back(make_camera_pill_app());   // predictable
    batch.apps.push_back(make_space_app());         // predictable
    batch.apps.push_back(make_uav_app("jetson-tx2"));  // complex
    batch.apps.push_back(make_parking_app(false));  // complex (Apalis TK1)

    for (const auto& app : batch.apps) {
        for (const int variant : {0, 1, 2}) {
            core::ScenarioRequest request;
            request.program = &app.program;
            request.platform = &app.platform;
            request.csl_source = app.csl_source;
            request.options.compiler.population = 8;
            request.options.compiler.iterations = 8;
            request.options.profile_runs = 10;
            request.options.scheduler.anneal_iterations = 120;
            if (variant == 1)
                request.options.scheduler.objective =
                    coordination::Scheduler::Objective::kMakespan;
            if (variant == 2) request.options.scheduler.seed = 7;
            request.label = app.name + "/v" + std::to_string(variant);
            batch.requests.push_back(std::move(request));
        }
    }
    return batch;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

bool print_table() {
    const auto batch = make_batch();
    const auto& requests = batch.requests;

    std::printf("=== E1: engine batch, %zu mixed scenarios ===\n",
                requests.size());

    // Sequential legacy path: the thin wrappers, one at a time, no sharing.
    const auto t_legacy = std::chrono::steady_clock::now();
    std::vector<core::ToolchainReport> legacy;
    legacy.reserve(requests.size());
    for (const auto& request : requests)
        legacy.push_back(core::run_toolchain(*request.program,
                                             *request.platform,
                                             csl::parse(request.csl_source),
                                             request.options));
    const double legacy_s = seconds_since(t_legacy);

    // Engine path: 4 workers, shared cache.
    core::ScenarioEngine engine({.worker_threads = 4});
    core::BatchStats stats;
    const auto t_engine = std::chrono::steady_clock::now();
    const auto reports = engine.run_all(requests, &stats);
    const double engine_s = seconds_since(t_engine);

    std::size_t identical = 0;
    for (std::size_t i = 0; i < reports.size(); ++i)
        if (reports[i].certificate.to_text() ==
            legacy[i].certificate.to_text())
            ++identical;

    std::printf("legacy sequential: %7.3f s  (%5.2f scenarios/s)\n",
                legacy_s, static_cast<double>(requests.size()) / legacy_s);
    std::printf("engine run_all:    %7.3f s  (%5.2f scenarios/s)\n",
                engine_s, stats.scenarios_per_s);
    std::printf("speedup:           %6.2fx  (%zu threads)\n",
                legacy_s / engine_s, stats.workers);
    std::printf("cache:             %llu hits / %llu misses (%.0f%% hit "
                "ratio, %llu evictions, %zu entries)\n",
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses),
                100.0 * stats.cache.hit_ratio(),
                static_cast<unsigned long long>(stats.cache.evictions),
                stats.cache.entries);
    std::printf("certificates byte-identical to legacy: %zu/%zu %s\n",
                identical, reports.size(),
                identical == reports.size() ? "(OK)" : "(MISMATCH!)");
    std::printf("per-stage telemetry (engine path):\n%s\n",
                stats.stage_telemetry.to_string().c_str());

    using benchjson::Object;
    using benchjson::Value;
    benchjson::write_artifact(
        "engine_batch",
        Value(Object{
            {"experiment", "engine_batch"},
            {"scenarios", requests.size()},
            {"legacy_s", legacy_s},
            {"engine_s", engine_s},
            {"speedup", legacy_s / engine_s},
            {"workers", stats.workers},
            {"scenarios_per_s", stats.scenarios_per_s},
            {"cache", Value(Object{{"hits", stats.cache.hits},
                                   {"misses", stats.cache.misses},
                                   {"hit_ratio", stats.cache.hit_ratio()},
                                   {"evictions", stats.cache.evictions},
                                   {"entries", stats.cache.entries}})},
            {"certificates_identical", identical == reports.size()},
        }));
    return identical == reports.size();
}

void BM_EngineBatch(benchmark::State& state) {
    const auto batch = make_batch();
    const auto workers = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        core::ScenarioEngine engine({.worker_threads = workers});
        benchmark::DoNotOptimize(engine.run_all(batch.requests));
    }
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(batch.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineBatch)
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_EngineBatchWarm(benchmark::State& state) {
    const auto batch = make_batch();
    core::ScenarioEngine engine({.worker_threads = 4});
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run_all(batch.requests));
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(batch.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineBatchWarm)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    // A certificate mismatch must fail the process: the CI bench-smoke
    // step relies on this table as the engine-vs-legacy byte-identity
    // gate.
    const bool identical = print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return identical ? 0 : 1;
}
