// Experiment R5 (Sec. IV-D, deep learning): reproduce both halves of the DL
// use case.
//
// (a) Cortex-M0: "the multi-criteria optimising compiler offers different
//     compiled variants of the same tasks with different energy consumptions
//     and WCET characteristics" — print the Pareto front of park_conv.
// (b) Apalis TK1 with the coordination layer only: "the application
//     generated from the TeamPlay toolchain performs similarly as the
//     original human-optimized version both in terms of energy and time" —
//     compare the generated schedule against a hand-optimised mapping.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "core/workflow.hpp"
#include "coordination/runtime.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

void print_m0_variants() {
    const auto app = make_parking_app(/*on_m0=*/true);
    const compiler::MultiCriteriaCompiler mcc(app.program,
                                              app.platform.cores[0]);
    compiler::MultiCriteriaCompiler::Options options;
    options.population = 12;
    options.iterations = 12;
    options.explore_security = false;
    const auto front = mcc.optimise("park_conv", options);

    std::puts("=== R5a: park_conv compiler variants on Cortex-M0 ===");
    std::printf("%-46s %-12s %-12s\n", "variant", "WCET", "WCEC");
    for (const auto& version : front)
        std::printf("%-46s %-12s %-12s\n", version.config.label().c_str(),
                    support::format_time(version.wcet_s).c_str(),
                    support::format_energy(version.wcec_j).c_str());
    std::printf("paper:    multiple variants trading WCET vs energy\n");
    std::printf("measured: %zu non-dominated variant(s); WCET span %.1fx, "
                "energy span %.1fx\n\n",
                front.size(),
                front.back().wcet_s / front.front().wcet_s,
                front.front().wcec_j / front.back().wcec_j);
}

void print_tk1_parity() {
    const auto app = make_parking_app(/*on_m0=*/false);
    const auto spec = csl::parse(app.csl_source);

    // TeamPlay: coordination layer with profiled estimates (as in the
    // paper: manual structure extraction + custom estimation -> here the
    // PowProfiler plays that role).  The hand-tuned deployment targets
    // latency, so the fair generated counterpart uses the makespan
    // objective.
    core::ComplexWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.profile_runs = 15;
    options.scheduler.objective =
        coordination::Scheduler::Objective::kMakespan;
    options.scheduler.anneal = false;
    const auto generated = workflow.run(spec, options);

    // Human-optimised mapping: an engineer pins the whole network to one
    // big core at maximum frequency (the classic hand-tuned deployment) and
    // runs stages back-to-back.
    const auto& big = app.platform.cores[0];
    sim::Machine machine(app.program, big, big.max_opp(), 3);
    stage_parking_weights(machine);
    machine.poke(parking::kState, 99);
    double manual_time = 0.0;
    double manual_energy = 0.0;
    for (const auto* task : {"park_capture", "park_conv", "park_pool",
                             "park_fc1", "park_fc2", "park_decide"}) {
        const auto run = machine.run(task, {});
        manual_time += run.time_s;
        manual_energy += run.energy_j();
    }

    // Execute the generated mapping concretely: run each task on its
    // assigned core/OPP in schedule order, honouring dependencies and core
    // exclusivity — the apples-to-apples counterpart of the manual run
    // (schedule budgets are high-water marks; deployment runs real code).
    double generated_time = 0.0;
    double generated_energy = 0.0;
    {
        std::map<std::size_t, std::unique_ptr<sim::Machine>> machines;
        std::map<std::string, double> finish;
        std::map<std::size_t, double> core_free;
        std::vector<const coordination::ScheduleEntry*> ordered;
        for (const auto& entry : generated.schedule.entries)
            ordered.push_back(&entry);
        std::sort(ordered.begin(), ordered.end(),
                  [](const auto* a, const auto* b) {
                      return a->start_s < b->start_s;
                  });
        for (const auto* entry : ordered) {
            const auto* task = generated.graph.find(entry->task);
            auto& machine = machines[entry->core];
            if (!machine) {
                machine = std::make_unique<sim::Machine>(
                    app.program, app.platform.cores[entry->core],
                    entry->opp_index, 3);
                stage_parking_weights(*machine);
                machine->poke(parking::kState, 99);
            }
            const auto run = machine->run(task->entry_fn, {});
            double ready = core_free[entry->core];
            for (const auto& dep : task->deps)
                ready = std::max(ready, finish[dep]);
            const double end = ready + run.time_s;
            finish[entry->task] = end;
            core_free[entry->core] = end;
            generated_time = std::max(generated_time, end);
            generated_energy += run.energy_j();
        }
    }

    std::puts("=== R5b: parking CNN on TK1, generated vs hand-optimised ===");
    std::printf("%-30s %14s %14s %10s\n", "metric", "hand-optimised",
                "TeamPlay", "ratio");
    std::printf("%-30s %14s %14s %9.2fx\n", "inference latency",
                support::format_time(manual_time).c_str(),
                support::format_time(generated_time).c_str(),
                generated_time / manual_time);
    std::printf("%-30s %14s %14s %9.2fx\n", "inference energy (CPU domain)",
                support::format_energy(manual_energy).c_str(),
                support::format_energy(generated_energy).c_str(),
                generated_energy / manual_energy);
    std::printf("paper:    generated performs similarly to human-optimised\n");
    std::printf("measured: latency ratio %.2fx, energy ratio %.2fx "
                "(1.0 = parity)\n\n",
                generated_time / manual_time,
                generated_energy / manual_energy);
}

void BM_CnnInferenceM0(benchmark::State& state) {
    const auto app = make_parking_app(true);
    sim::Machine machine(app.program, app.platform.cores[0], 2);
    stage_parking_weights(machine);
    machine.poke(parking::kState, 1);
    for (auto _ : state) {
        for (const auto* task : {"park_capture", "park_conv", "park_pool",
                                 "park_fc1", "park_fc2", "park_decide"})
            benchmark::DoNotOptimize(machine.run(task, {}).cycles);
    }
}
BENCHMARK(BM_CnnInferenceM0)->Unit(benchmark::kMillisecond);

void BM_CnnVariantCompile(benchmark::State& state) {
    const auto app = make_parking_app(true);
    const compiler::MultiCriteriaCompiler mcc(app.program,
                                              app.platform.cores[0]);
    compiler::PassConfig config;
    config.unroll_factor = 4;
    config.licm = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(mcc.compile("park_conv", config));
}
BENCHMARK(BM_CnnVariantCompile)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_m0_variants();
    print_tk1_parity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
