// Experiment R6 (Sec. IV): "our security approach and tools were validated
// on synthetic benchmarks on the Cortex-M0."
//
// Three classic leaky kernels (square-and-multiply modexp, early-exit
// password compare, secret-indexed table lookup) are measured with the
// indiscernibility-style metrics before and after each SecurityOptimiser
// countermeasure, together with the time/energy overhead each countermeasure
// costs — the ETS trade-off at the heart of the paper.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compiler/multi_criteria.hpp"
#include "ir/builder.hpp"
#include "security/leakage.hpp"
#include "security/taint.hpp"
#include "security/transforms.hpp"
#include "sim/machine.hpp"
#include "support/units.hpp"
#include "wcet/analyser.hpp"

using namespace teamplay;

namespace {

/// Square-and-multiply with a secret-dependent multiply (pure arms:
/// ladderisable).
ir::Program modexp_kernel() {
    ir::FunctionBuilder b("k", 1);
    const auto key = b.secret(b.param(0));
    const auto modulus = b.imm(65521);
    const auto acc = b.mov(b.imm(1));
    const auto i = b.loop_begin(8);
    const auto bit = b.band(b.shr(key, i), b.imm(1));
    const auto sq = b.rem(b.mul(acc, acc), modulus);
    b.if_begin(bit);
    b.assign(acc, b.rem(b.mul(sq, b.imm(7)), modulus));
    b.if_else();
    b.assign(acc, b.mov(sq));
    b.if_end();
    b.loop_end();
    b.ret(acc);
    ir::Program program;
    program.add(b.build());
    return program;
}

/// Early-exit password comparison: the expensive digest work continues only
/// while the secret's prefix still matches the stored pattern, so total
/// runtime is proportional to the match length — the classic remote timing
/// leak.
ir::Program password_kernel() {
    ir::FunctionBuilder b("k", 1);
    const auto key = b.secret(b.param(0));
    const auto ok = b.mov(b.imm(1));
    const auto done = b.mov(b.imm(0));
    const auto i = b.loop_begin(8);
    const auto expected = b.band(b.shr(key, i), b.imm(1));
    const auto stored = b.band(b.load(b.and_imm(i, 63)), b.imm(1));
    const auto matches = b.cmp_eq(expected, stored);
    const auto alive = b.band(matches, b.cmp_eq(done, b.imm(0)));
    b.if_begin(alive);
    // Still matching: fold the byte into the expensive running digest.
    b.assign(ok, b.rem(b.mul(ok, b.add_imm(expected, 3)), b.imm(251)));
    b.if_else();
    // Mismatch (or already rejected): bail out cheaply.
    b.assign(ok, b.imm(0));
    b.assign(done, b.imm(1));
    b.if_end();
    b.loop_end();
    b.ret(ok);
    ir::Program program_out;
    program_out.memory_words = 64;
    program_out.add(b.build());
    return program_out;
}

/// Secret-indexed lookup: address leakage (not fixable by ladderisation of
/// branches; reported as residual by the taint analysis).
ir::Program sbox_kernel() {
    ir::Program program;
    program.memory_words = 512;
    ir::FunctionBuilder b("k", 1);
    const auto key = b.secret(b.param(0));
    const auto acc = b.mov(b.imm(0));
    const auto i = b.loop_begin(8);
    const auto index = b.and_imm(b.add(key, i), 255);
    const auto v = b.load(index);
    const auto gated = b.cmp_gt(v, b.imm(100));
    b.if_begin(gated);
    b.assign(acc, b.add(acc, v));
    b.if_else();
    b.assign(acc, b.add(acc, b.imm(1)));
    b.if_end();
    b.loop_end();
    b.ret(acc);
    program.add(b.build());
    return program;
}

struct KernelCase {
    const char* name;
    ir::Program (*make)();
};

constexpr KernelCase kKernels[] = {
    {"modexp", modexp_kernel},
    {"password", password_kernel},
    {"sbox", sbox_kernel},
};

security::SecretRunner runner_for(const ir::Program& program) {
    static const platform::Platform nucleo = platform::nucleo_f091();
    return [&program](ir::Word secret) {
        sim::Machine machine(program, nucleo.cores[0], 0);
        // Memory contents for the password/sbox kernels.
        for (std::size_t a = 0; a < 64; ++a)
            machine.poke(a, static_cast<ir::Word>(a * 37 % 251));
        return machine.run("k", std::vector<ir::Word>{secret},
                           /*record_trace=*/true);
    };
}

void print_table() {
    static const platform::Platform nucleo = platform::nucleo_f091();
    const wcet::Analyser* current_analyser = nullptr;
    (void)current_analyser;

    std::puts(
        "=== R6: side-channel metrics on Cortex-M0 synthetic kernels ===");
    std::printf("%-10s %-10s %10s %10s %10s %12s %10s\n", "kernel",
                "variant", "t-MI[b]", "t-spread", "p-|t|", "WCET",
                "proxy");
    for (const auto& kernel : kKernels) {
        for (const auto* variant : {"original", "balanced", "laddered"}) {
            auto program = kernel.make();
            auto& fn = *program.find("k");
            if (std::string_view(variant) == "balanced")
                security::balance_secret_branches(program, fn);
            else if (std::string_view(variant) == "laddered")
                security::ladderise(program, fn);

            const auto leak = security::measure_leakage(
                runner_for(program), 150, 8, 23);
            const auto taint = security::analyze_taint(program, fn);
            const wcet::Analyser analyser(program);
            const auto wcet = analyser.analyse("k", nucleo.cores[0], 0);
            std::printf("%-10s %-10s %10.3f %10.1f %10.1f %12s %10.1f\n",
                        kernel.name, variant, leak.timing_mi_bits,
                        leak.timing_spread_cycles, leak.power_max_t,
                        support::format_time(wcet.time_s).c_str(),
                        taint.leakage_proxy());
        }
    }
    std::puts(
        "\npaper:    countermeasures remove timing leakage at bounded "
        "ETS cost;\n          metrics are attack-agnostic "
        "(indiscernibility methodology)\nmeasured: timing MI/spread "
        "collapse to 0 for balanced/laddered variants;\n          "
        "residual power leakage and the sbox address leak remain visible "
        "in\n          the static proxy, as expected for first-order "
        "countermeasures\n");
}

void BM_LeakageMeasurement(benchmark::State& state) {
    const auto program = modexp_kernel();
    const auto runner = runner_for(program);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            security::measure_leakage(runner, 50, 8, 29));
}
BENCHMARK(BM_LeakageMeasurement)->Unit(benchmark::kMillisecond);

void BM_Ladderise(benchmark::State& state) {
    for (auto _ : state) {
        auto program = modexp_kernel();
        benchmark::DoNotOptimize(
            security::ladderise(program, *program.find("k")));
    }
}
BENCHMARK(BM_Ladderise)->Unit(benchmark::kMicrosecond);

void BM_TaintAnalysis(benchmark::State& state) {
    const auto program = sbox_kernel();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            security::analyze_taint(program, *program.find("k")));
}
BENCHMARK(BM_TaintAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
