// Ablation A1: the multi-objective search engine (DESIGN.md §5.4).
//
// The paper's compiler uses the Flower Pollination Algorithm for
// multi-objective optimisation (Jadhav & Falk [5]).  This bench compares FPA
// against NSGA-II and the traditional weighted-sum hill climber on the real
// compiler configuration space (pill_encrypt on the Cortex-M0), reporting
// hypervolume (bigger = better front), front size and evaluation budget.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compiler/moo.hpp"
#include "compiler/multi_criteria.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct EngineResult {
    const char* name;
    double hypervolume = 0.0;
    std::size_t front_size = 0;
    int evaluations = 0;
};

void print_table() {
    const auto app = make_camera_pill_app();
    const auto& m0 = app.platform.cores[0];
    const compiler::MultiCriteriaCompiler mcc(app.program, m0);

    // Shared evaluation function over the real configuration space.
    const compiler::EvalFn eval = [&mcc](const compiler::Genome& genome) {
        const auto version =
            mcc.compile("pill_encrypt", mcc.decode(genome, true));
        return compiler::Objectives{version.time_s * 1e3,
                                    version.energy_j * 1e3,
                                    version.leakage};
    };

    // Reference point for hypervolume: the traditional config, worsened.
    const auto traditional =
        mcc.compile("pill_encrypt", mcc.traditional_config());
    const compiler::Objectives ref = {traditional.time_s * 1e3 * 1.5,
                                      traditional.energy_j * 1e3 * 1.5,
                                      traditional.leakage + 8.0};

    std::vector<EngineResult> results;
    {
        support::Rng rng(42);
        compiler::FpaParams params;
        params.population = 12;
        params.iterations = 14;
        const auto run = compiler::fpa_optimise(eval, compiler::kGenomeDims,
                                                params, rng);
        std::vector<compiler::Objectives> front;
        for (const auto& s : run.front) front.push_back(s.objectives);
        support::Rng hv_rng(1);
        results.push_back({"FPA (paper's engine [5])",
                           compiler::hypervolume(front, ref, 30000, hv_rng),
                           run.front.size(), run.evaluations});
    }
    {
        support::Rng rng(42);
        compiler::Nsga2Params params;
        params.population = 12;
        params.generations = 14;
        const auto run = compiler::nsga2_optimise(
            eval, compiler::kGenomeDims, params, rng);
        std::vector<compiler::Objectives> front;
        for (const auto& s : run.front) front.push_back(s.objectives);
        support::Rng hv_rng(1);
        results.push_back({"NSGA-II",
                           compiler::hypervolume(front, ref, 30000, hv_rng),
                           run.front.size(), run.evaluations});
    }
    {
        support::Rng rng(42);
        compiler::WeightedSumParams params;
        params.restarts = 6;
        params.iterations = 28;
        const auto run = compiler::weighted_sum_optimise(
            eval, compiler::kGenomeDims, params, rng);
        std::vector<compiler::Objectives> front;
        for (const auto& s : run.front) front.push_back(s.objectives);
        support::Rng hv_rng(1);
        results.push_back({"weighted-sum (traditional)",
                           compiler::hypervolume(front, ref, 30000, hv_rng),
                           run.front.size(), run.evaluations});
    }

    std::puts("=== A1: multi-objective engine ablation (pill_encrypt/M0) ===");
    std::printf("%-30s %14s %8s %8s\n", "engine", "hypervolume", "front",
                "evals");
    for (const auto& result : results)
        std::printf("%-30s %14.4g %8zu %8d\n", result.name,
                    result.hypervolume, result.front_size,
                    result.evaluations);
    std::printf("expected shape: population-based engines (FPA, NSGA-II) "
                "cover more of the\nfront than scalarisation at a similar "
                "budget; FPA is competitive with NSGA-II\n\n");
}

void BM_FpaOnCompilerSpace(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    const compiler::MultiCriteriaCompiler mcc(app.program,
                                              app.platform.cores[0]);
    const compiler::EvalFn eval = [&mcc](const compiler::Genome& genome) {
        const auto version =
            mcc.compile("pill_delta", mcc.decode(genome, false));
        return compiler::Objectives{version.time_s, version.energy_j,
                                    version.leakage};
    };
    for (auto _ : state) {
        support::Rng rng(7);
        compiler::FpaParams params;
        params.population = 8;
        params.iterations = static_cast<int>(state.range(0));
        benchmark::DoNotOptimize(
            compiler::fpa_optimise(eval, compiler::kGenomeDims, params, rng));
    }
}
BENCHMARK(BM_FpaOnCompilerSpace)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_HypervolumeEstimate(benchmark::State& state) {
    support::Rng rng(3);
    std::vector<compiler::Objectives> front;
    for (int i = 0; i < 24; ++i)
        front.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                         rng.uniform(0.0, 1.0)});
    const compiler::Objectives ref = {1.5, 1.5, 1.5};
    for (auto _ : state) {
        support::Rng hv_rng(9);
        benchmark::DoNotOptimize(
            compiler::hypervolume(front, ref, 20000, hv_rng));
    }
}
BENCHMARK(BM_HypervolumeEstimate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
