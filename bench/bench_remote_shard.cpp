// Experiment E6: cross-host shard fabric — the Poisson service trace
// replayed through loopback remote shards.
//
// The same mixed-app arrival trace as E5 (uav/pill/rover round-robin,
// seeded exponential gaps) is driven through three topologies: the
// in-process engine (1 local shard), one loopback remote shard, and two
// loopback remote shards — each remote a real ShardServer on an ephemeral
// TCP port with the full wire path (request frame encode, length-prefixed
// transport, strict decode, reply frame) in the loop.  Completion-latency
// p50/p95 is reported per topology, alongside the per-hop transport laps
// (net/encode, net/rtt, net/decode) the client records for every round
// trip.
//
// Gates (any violation exits non-zero; the CI bench-smoke step relies on
// it):
//   * every topology's certificates are byte-identical to the in-process
//     run — the wire adds latency, never drift;
//   * every scenario that crossed the wire recorded its three hop laps;
//   * in the remote-fetch phase, a cold local engine pointed at a warm
//     fabric peer serves every miss from the peer's cache: remote_misses
//     == 0 (zero recomputes of results the peer held) and remote_hits
//     covers the peer's warm keys.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/sharded_engine.hpp"
#include "net/shard_server.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct Trace {
    std::vector<UseCaseApp> apps;  ///< owns programs/platforms
    std::vector<core::ScenarioRequest> requests;  ///< arrival order
    std::vector<double> gaps_s;                   ///< inter-arrival times
};

/// 30 arrivals, mean inter-arrival 3 ms — the E5 shape, sized so the
/// three-topology sweep plus the fetch phase stays within bench-smoke
/// budget.
Trace make_trace(std::uint64_t seed = 11) {
    Trace trace;
    trace.apps.push_back(make_uav_app("apalis-tk1"));
    trace.apps.push_back(make_camera_pill_app());
    trace.apps.push_back(make_rover_app("apalis-tk1"));

    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> arrival(1.0 / 0.003);
    for (int i = 0; i < 30; ++i) {
        const auto& app = trace.apps[static_cast<std::size_t>(i) %
                                     trace.apps.size()];
        core::ScenarioRequest request;
        request.program = &app.program;
        request.platform = &app.platform;
        request.csl_source = app.csl_source;
        request.options.compiler.population = 6;
        request.options.compiler.iterations = 6;
        request.options.profile_runs = 8;
        request.options.scheduler.anneal_iterations = 80;
        request.label = app.name + "#" + std::to_string(i);
        trace.requests.push_back(std::move(request));
        trace.gaps_s.push_back(arrival(rng));
    }
    return trace;
}

struct Percentiles {
    double p50_ms = 0.0;
    double p95_ms = 0.0;
};

Percentiles percentiles(std::vector<double> latencies_s) {
    std::sort(latencies_s.begin(), latencies_s.end());
    const auto at = [&](double q) {
        const auto index = static_cast<std::size_t>(
            q * static_cast<double>(latencies_s.size() - 1));
        return 1e3 * latencies_s[index];
    };
    return {at(0.50), at(0.95)};
}

struct ReplayOutcome {
    std::vector<double> latencies_s;
    std::vector<std::string> certificates;  ///< canonical text, trace order
    core::StageTelemetry telemetry;
    core::EvaluationCache::Stats cache;
};

ReplayOutcome replay(const Trace& trace,
                     core::ShardedScenarioEngine& engine) {
    std::mutex mutex;
    ReplayOutcome outcome;
    outcome.latencies_s.assign(trace.requests.size(), 0.0);

    std::vector<core::ScenarioTicket> tickets;
    tickets.reserve(trace.requests.size());
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(trace.gaps_s[i]));
        const auto arrival = std::chrono::steady_clock::now();
        tickets.push_back(engine.submit(
            trace.requests[i],
            [&outcome, &mutex, i, arrival](const core::ScenarioOutcome&) {
                const double latency =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - arrival)
                        .count();
                const std::lock_guard<std::mutex> lock(mutex);
                outcome.latencies_s[i] = latency;
            }));
    }
    for (auto& ticket : tickets) ticket.wait();
    outcome.certificates.reserve(tickets.size());
    for (auto& ticket : tickets)
        outcome.certificates.push_back(ticket.get().certificate.to_text());
    outcome.telemetry = engine.stage_telemetry();
    outcome.cache = engine.cache_stats();
    return outcome;
}

/// N loopback ShardServers on ephemeral ports plus a pure front-end
/// engine that routes everything across the wire.
ReplayOutcome replay_remote(const Trace& trace, std::size_t remote_count,
                            std::size_t workers_per_remote) {
    std::vector<std::unique_ptr<net::ShardServer>> servers;
    core::ShardedScenarioEngine::Options options;
    options.shards = 0;
    for (std::size_t i = 0; i < remote_count; ++i) {
        net::ShardServer::Options server_options;
        server_options.engine.worker_threads = workers_per_remote;
        servers.push_back(
            std::make_unique<net::ShardServer>(std::move(server_options)));
        options.remote_endpoints.push_back(
            "127.0.0.1:" + std::to_string(servers.back()->port()));
    }
    core::ShardedScenarioEngine engine(std::move(options));
    return replay(trace, engine);
}

benchjson::Object lap_row(const core::StageTelemetry& telemetry,
                          const std::string& stage) {
    const auto& stages = telemetry.stages();
    const auto it = stages.find(stage);
    const core::StageTelemetry::PerStage lap =
        it != stages.end() ? it->second : core::StageTelemetry::PerStage{};
    return {
        {"count", lap.count},
        {"mean_ms", 1e3 * lap.mean_s()},
        {"max_ms", 1e3 * lap.max_s},
    };
}

std::uint64_t lap_count(const core::StageTelemetry& telemetry,
                        const std::string& stage) {
    const auto it = telemetry.stages().find(stage);
    return it != telemetry.stages().end() ? it->second.count : 0;
}

/// Warm one fabric peer over the wire, then replay the trace on a cold
/// local engine whose only help is that peer's cache.
bool run_fetch_phase(const Trace& trace,
                     const ReplayOutcome& baseline,
                     benchjson::Object* artifact) {
    net::ShardServer::Options server_options;
    server_options.engine.worker_threads = 2;
    net::ShardServer server(std::move(server_options));
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(server.port());

    {
        core::ShardedScenarioEngine::Options warm_options;
        warm_options.shards = 0;
        warm_options.remote_endpoints.push_back(endpoint);
        core::ShardedScenarioEngine warmer(std::move(warm_options));
        (void)replay(trace, warmer);
    }

    core::ShardedScenarioEngine::Options fetch_options;
    fetch_options.shards = 1;
    fetch_options.worker_threads = 2;
    fetch_options.fetch_peers.push_back(endpoint);
    core::ShardedScenarioEngine fetcher(std::move(fetch_options));
    const auto fetched = replay(trace, fetcher);

    const bool identical = fetched.certificates == baseline.certificates;
    const bool zero_recomputes = fetched.cache.remote_misses == 0;
    const bool peer_served = fetched.cache.remote_hits > 0;

    std::printf("fetch phase: %llu remote hits / %llu remote misses "
                "(certificates %s)\n",
                static_cast<unsigned long long>(fetched.cache.remote_hits),
                static_cast<unsigned long long>(
                    fetched.cache.remote_misses),
                identical ? "identical" : "DIFFER");
    if (!zero_recomputes)
        std::printf("fetch FAIL: %llu misses recomputed results the warm "
                    "peer held\n",
                    static_cast<unsigned long long>(
                        fetched.cache.remote_misses));
    if (!peer_served)
        std::printf("fetch FAIL: the warm peer served nothing\n");
    if (!identical)
        std::printf(
            "fetch FAIL: fetched certificates differ from in-process\n");

    artifact->push_back(
        {"remote_fetch",
         benchjson::Object{
             {"remote_hits", fetched.cache.remote_hits},
             {"remote_misses", fetched.cache.remote_misses},
             {"certificates_identical", identical},
         }});
    return identical && zero_recomputes && peer_served;
}

bool print_table() {
    const auto trace = make_trace();
    std::printf("=== E6: remote shard fabric, %zu Poisson arrivals over "
                "loopback TCP ===\n",
                trace.requests.size());

    core::ShardedScenarioEngine local({.shards = 1, .worker_threads = 4});
    const auto baseline = replay(trace, local);
    const auto base_stats = percentiles(baseline.latencies_s);
    std::printf("in-process:      p50 %8.2f ms, p95 %8.2f ms\n",
                base_stats.p50_ms, base_stats.p95_ms);

    bool ok = true;
    benchjson::Array rows;
    rows.push_back(benchjson::Value(benchjson::Object{
        {"topology", "in_process"},
        {"remote_shards", 0},
        {"p50_ms", base_stats.p50_ms},
        {"p95_ms", base_stats.p95_ms},
    }));

    for (const std::size_t remotes : {1UL, 2UL}) {
        const auto outcome = replay_remote(trace, remotes, 4 / remotes);
        const auto stats = percentiles(outcome.latencies_s);
        const bool identical =
            outcome.certificates == baseline.certificates;
        // Exactly one hop per scenario, whatever the topology: the rtt
        // lap count proves every scenario's transport was measured.
        const bool laps_complete =
            lap_count(outcome.telemetry, "net/rtt") ==
                trace.requests.size() &&
            lap_count(outcome.telemetry, "net/encode") ==
                trace.requests.size() &&
            lap_count(outcome.telemetry, "net/decode") ==
                trace.requests.size();
        std::printf("%zu remote shard%s: p50 %8.2f ms, p95 %8.2f ms "
                    "(certificates %s, hop laps %s)\n",
                    remotes, remotes == 1 ? " " : "s", stats.p50_ms,
                    stats.p95_ms, identical ? "identical" : "DIFFER",
                    laps_complete ? "complete" : "MISSING");
        if (!identical)
            std::printf("remote FAIL: certificates drifted across the "
                        "wire (%zu remotes)\n",
                        remotes);
        if (!laps_complete)
            std::printf("remote FAIL: per-hop laps incomplete "
                        "(%zu remotes)\n",
                        remotes);
        ok = ok && identical && laps_complete;
        rows.push_back(benchjson::Value(benchjson::Object{
            {"topology", std::to_string(remotes) + "_remote"},
            {"remote_shards", remotes},
            {"p50_ms", stats.p50_ms},
            {"p95_ms", stats.p95_ms},
            {"certificates_identical", identical},
            {"net_encode", lap_row(outcome.telemetry, "net/encode")},
            {"net_rtt", lap_row(outcome.telemetry, "net/rtt")},
            {"net_decode", lap_row(outcome.telemetry, "net/decode")},
        }));
    }

    benchjson::Object artifact{
        {"experiment", "remote_shard"},
        {"arrivals", trace.requests.size()},
        {"topologies", std::move(rows)},
    };
    ok = run_fetch_phase(trace, baseline, &artifact) && ok;
    benchjson::write_artifact("remote_shard",
                              benchjson::Value(std::move(artifact)));
    return ok;
}

void BM_RemoteShardTrace(benchmark::State& state) {
    const auto trace = make_trace();
    const auto remotes = static_cast<std::size_t>(state.range(0));
    std::vector<double> all;
    for (auto _ : state) {
        const auto latencies =
            remotes == 0
                ? [&] {
                      core::ShardedScenarioEngine engine(
                          {.shards = 1, .worker_threads = 4});
                      return replay(trace, engine);
                  }()
                      .latencies_s
                : replay_remote(trace, remotes, 4 / remotes).latencies_s;
        all.insert(all.end(), latencies.begin(), latencies.end());
    }
    const auto stats = percentiles(std::move(all));
    state.counters["p50_ms"] = stats.p50_ms;
    state.counters["p95_ms"] = stats.p95_ms;
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(trace.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemoteShardTrace)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    // Certificate drift across the wire, a missing hop lap, or a fetch
    // miss against a warm peer all fail the process: the CI bench-smoke
    // step relies on this exit code.
    const bool ok = print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return ok ? 0 : 1;
}
