// Ablation/methodology A3: energy-model accuracy (the "robust and accurate"
// claim of Nikov et al. [8] / Georgiou et al. [9], DESIGN.md §5.2).
//
// Rebuilds the paper's model-construction loop on the simulated boards:
// calibration kernels -> measured energies -> least-squares per-class model
// -> held-out validation MAPE, for the Cortex-M0 and the LEON3.  Also
// validates the coarse component model used on complex platforms, and shows
// how accuracy degrades with fewer calibration kernels (the cost-
// effectiveness trade-off the Energy Modelling Challenge describes).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "energy/component_model.hpp"
#include "energy/model_fit.hpp"
#include "platform/platform.hpp"
#include "support/rng.hpp"

using namespace teamplay;

namespace {

double heldout_mape(const platform::Core& core, int kernels, int repeats) {
    const auto suite = energy::make_calibration_suite(kernels, 7);
    auto samples = energy::collect_samples(suite, core, 1, repeats, 13);
    std::vector<energy::CalibrationSample> train;
    std::vector<energy::CalibrationSample> test;
    for (std::size_t i = 0; i < samples.size(); ++i)
        (i % 3 == 0 ? test : train).push_back(samples[i]);
    const auto model = energy::fit_model(train);
    return energy::model_mape(model, test);
}

void print_table() {
    std::puts("=== A3: ISA-level energy model accuracy (held-out MAPE) ===");
    std::printf("%-14s %10s %10s %10s\n", "core", "8 kernels", "16 kernels",
                "32 kernels");
    const auto m0 = platform::nucleo_f091().cores[0];
    const auto leon = platform::gr712rc().cores[0];
    for (const auto* core : {&m0, &leon}) {
        std::printf("%-14s %9.2f%% %9.2f%% %9.2f%%\n",
                    core->model.name.c_str(), heldout_mape(*core, 8, 4),
                    heldout_mape(*core, 16, 4), heldout_mape(*core, 32, 4));
    }
    std::printf("paper:    \"robust and accurate fine-grain power models\" "
                "(few-%% errors [8][9])\nmeasured: errors in the low "
                "single digits once the suite spans the class space\n"
                "(residual error = data-dependent energy the class-level "
                "model cannot see)\n\n");

    // Component-level model for complex boards (PowProfiler family).
    support::Rng rng(11);
    std::vector<energy::PowerSample> samples;
    for (int i = 0; i < 150; ++i) {
        energy::PowerSample sample;
        sample.utilisation = {rng.uniform(), rng.uniform(), rng.uniform()};
        sample.power_w = 1.9 + 4.5 * sample.utilisation[0] +
                         7.0 * sample.utilisation[1] +
                         2.0 * sample.utilisation[2] +
                         rng.gaussian(0.0, 0.08);
        samples.push_back(std::move(sample));
    }
    const auto component = energy::fit_component_model(samples);
    std::puts("component model (TX2-style: CPU cluster / GPU / memory):");
    std::printf("  idle %.2f W, components {%.2f, %.2f, %.2f} W, MAPE "
                "%.2f%%\n",
                component.idle_w, component.component_w[0],
                component.component_w[1], component.component_w[2],
                energy::component_model_mape(component, samples));
    std::printf("  ground truth: idle 1.90 W, components {4.50, 7.00, "
                "2.00} W\n\n");
}

void BM_CollectCalibrationSamples(benchmark::State& state) {
    const auto core = platform::nucleo_f091().cores[0];
    const auto suite = energy::make_calibration_suite(
        static_cast<int>(state.range(0)), 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            energy::collect_samples(suite, core, 1, 3, 13));
}
BENCHMARK(BM_CollectCalibrationSamples)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FitIsaModel(benchmark::State& state) {
    const auto core = platform::nucleo_f091().cores[0];
    const auto suite = energy::make_calibration_suite(24, 7);
    const auto samples = energy::collect_samples(suite, core, 1, 4, 13);
    for (auto _ : state)
        benchmark::DoNotOptimize(energy::fit_model(samples));
}
BENCHMARK(BM_FitIsaModel)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
