// Experiment R3 (Sec. IV-C, search-and-rescue UAV): reproduce "we observe an
// energy improvement of 18%, resulting in the flight time being increased by
// approximately 4 minutes".
//
// Baseline = complex-architecture flow with a makespan-only (HEFT-style)
// schedule at maximum performance; TeamPlay = the same profiles driving the
// energy-aware multi-version schedule.  Flight time follows the mission
// model: battery / (mechanical power + payload electronics power).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/workflow.hpp"
#include "energy/component_model.hpp"
#include "profiler/pow_profiler.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

/// Hardware substitution (DESIGN.md §2): the simulated frames are 64x48
/// while the SAR payload processes a QHD+ video stream — roughly 1600x the
/// pixel load.  Per-frame busy time from the profiled schedule is scaled by
/// this factor before entering the TK1 component power model, exactly the
/// coarse-grained modelling route the paper's UAV work uses [18][19].
constexpr double kResolutionScale = 1600.0;
constexpr double kFps = 5.0;  // detection rate (200 ms frame period)

struct OppChoice {
    std::size_t opp = 0;
    double busy_per_frame_s = 0.0;  ///< scaled, at this OPP
    double payload_w = 0.0;
    bool feasible = false;
};

/// Payload power when the whole pipeline runs at `opp` on the big cluster:
/// idle draw plus duty-cycled active power (active power scales with f*V^2).
OppChoice evaluate_opp(const platform::Core& big, double busy_at_max_s,
                       std::size_t opp) {
    OppChoice choice;
    choice.opp = opp;
    const auto& max_point = big.opp(big.max_opp());
    const auto& point = big.opp(opp);
    choice.busy_per_frame_s =
        busy_at_max_s * max_point.freq_hz / point.freq_hz;
    choice.feasible = choice.busy_per_frame_s <= 1.0 / kFps;

    // TK1 payload component model: 1.6 W idle board draw, 11 W CPU cluster
    // at the maximum operating point.
    const double cluster_max_w = 11.0;
    const double active_w = cluster_max_w * (point.freq_hz /
                                             max_point.freq_hz) *
                            big.energy_scale(point) /
                            big.energy_scale(max_point);
    const double duty = choice.busy_per_frame_s * kFps;
    choice.payload_w = 1.6 + duty * active_w;
    return choice;
}

void print_table() {
    const auto app = make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);

    // Profile the pipeline (pass 1 of Fig. 2) to get the per-frame busy
    // time on a big core at maximum frequency.
    const auto& big = app.platform.cores[0];
    profiler::PowProfiler prof(app.program, big, big.max_opp(), 31);
    double busy_at_max = 0.0;
    for (const auto& task : spec.tasks) {
        const auto profile =
            prof.profile(task.entry, profiler::zero_inputs(0), 20);
        busy_at_max += profile.time_s.high_water_mark();
    }
    busy_at_max *= kResolutionScale;

    // Baseline: race at maximum frequency (stock governor).  TeamPlay: the
    // battery-aware planner picks the lowest-power OPP still meeting the
    // frame deadline.
    const auto baseline = evaluate_opp(big, busy_at_max, big.max_opp());
    OppChoice teamplay = baseline;
    for (std::size_t opp = 0; opp < big.opps.size(); ++opp) {
        const auto choice = evaluate_opp(big, busy_at_max, opp);
        if (choice.feasible && choice.payload_w < teamplay.payload_w)
            teamplay = choice;
    }

    const double gain = (1.0 - teamplay.payload_w / baseline.payload_w) *
                        100.0;
    energy::MissionPower base_mission{.battery_wh = 70.0,
                                      .mechanical_w = 28.0,
                                      .electronics_w = baseline.payload_w};
    energy::MissionPower tp_mission = base_mission;
    tp_mission.electronics_w = teamplay.payload_w;
    const double extra_minutes =
        (tp_mission.flight_time_s() - base_mission.flight_time_s()) / 60.0;

    std::puts("=== R3: SAR UAV on Apalis TK1 (Sec. IV-C) ===");
    std::printf("%-34s %14s %14s\n", "metric", "baseline", "TeamPlay");
    std::printf("%-34s %13zu %14zu\n", "chosen DVFS point (OPP index)",
                baseline.opp, teamplay.opp);
    std::printf("%-34s %14s %14s\n", "frame busy (scaled stream)",
                support::format_time(baseline.busy_per_frame_s).c_str(),
                support::format_time(teamplay.busy_per_frame_s).c_str());
    std::printf("%-34s %14s %14s\n", "payload power",
                support::format_power(baseline.payload_w).c_str(),
                support::format_power(teamplay.payload_w).c_str());
    std::printf("%-34s %13.1fm %13.1fm\n", "flight time (70 Wh pack)",
                base_mission.flight_time_s() / 60.0,
                tp_mission.flight_time_s() / 60.0);
    std::printf("%-34s %14s %14s\n", "frame deadline met",
                baseline.feasible ? "yes" : "NO",
                teamplay.feasible ? "yes" : "NO");
    std::printf("paper:    18%% energy improvement, ~+4 min flight time\n");
    std::printf("measured: %.0f%% energy improvement, %+.1f min flight "
                "time\n\n",
                gain, extra_minutes);
}

void BM_UavProfileTask(benchmark::State& state) {
    const auto app = make_uav_app("apalis-tk1");
    profiler::PowProfiler prof(app.program, app.platform.cores[0], 1, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            prof.profile("uav_detect", profiler::zero_inputs(0), 10));
}
BENCHMARK(BM_UavProfileTask)->Unit(benchmark::kMillisecond);

void BM_UavDetectOnGpuVsBig(benchmark::State& state) {
    const auto app = make_uav_app("apalis-tk1");
    const auto& core = app.platform.cores[static_cast<std::size_t>(
        state.range(0))];
    sim::Machine machine(app.program, core, 0, 11);
    machine.poke(uav::kState, 5);
    (void)machine.run("uav_capture", {});
    (void)machine.run("uav_resize", {});
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run("uav_detect", {}).cycles);
}
BENCHMARK(BM_UavDetectOnGpuVsBig)
    ->Arg(0)   // a15-0
    ->Arg(4)   // gk20a GPU aggregate
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
