// Minimal machine-readable artifact writer for the bench binaries.
//
// Every experiment table that a human reads in the CI log is mirrored as a
// BENCH_<name>.json file next to the binary, so the driver (and future
// regression tooling) can track throughput trajectories without scraping
// stdout.  The writer covers exactly what the artifacts need — ordered
// objects, arrays, numbers, strings, booleans — with no external
// dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace teamplay::benchjson {

class Value;
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// One JSON value.  Objects preserve insertion order so artifacts diff
/// cleanly run-to-run.
class Value {
public:
    Value() : kind_(Kind::kNull) {}
    Value(bool b) : kind_(Kind::kBool), bool_(b) {}
    Value(double d) : kind_(Kind::kNumber), number_(d) {}
    Value(int i) : kind_(Kind::kNumber), number_(i) {}
    Value(std::int64_t i)
        : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
    template <typename T,
              typename = std::enable_if_t<std::is_unsigned_v<T>>>
    Value(T u) : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
    Value(const char* s) : kind_(Kind::kString), string_(s) {}
    Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
    Value(Object members)
        : kind_(Kind::kObject),
          object_(std::make_shared<Object>(std::move(members))) {}
    Value(Array elements)
        : kind_(Kind::kArray),
          array_(std::make_shared<Array>(std::move(elements))) {}

    void dump(std::ostringstream& os) const {
        switch (kind_) {
            case Kind::kNull: os << "null"; break;
            case Kind::kBool: os << (bool_ ? "true" : "false"); break;
            case Kind::kNumber: {
                // Round-trippable doubles; integral values print as
                // integers so counters stay readable.
                const auto as_int = static_cast<std::int64_t>(number_);
                if (static_cast<double>(as_int) == number_) {
                    os << as_int;
                } else {
                    char buffer[32];
                    std::snprintf(buffer, sizeof buffer, "%.17g", number_);
                    os << buffer;
                }
                break;
            }
            case Kind::kString: dump_string(os, string_); break;
            case Kind::kObject: {
                os << '{';
                bool first = true;
                for (const auto& [key, value] : *object_) {
                    if (!first) os << ',';
                    first = false;
                    dump_string(os, key);
                    os << ':';
                    value.dump(os);
                }
                os << '}';
                break;
            }
            case Kind::kArray: {
                os << '[';
                bool first = true;
                for (const auto& value : *array_) {
                    if (!first) os << ',';
                    first = false;
                    value.dump(os);
                }
                os << ']';
                break;
            }
        }
    }

private:
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kObject,
        kArray,
    };

    static void dump_string(std::ostringstream& os, const std::string& s) {
        os << '"';
        for (const char c : s) {
            switch (c) {
                case '"': os << "\\\""; break;
                case '\\': os << "\\\\"; break;
                case '\n': os << "\\n"; break;
                case '\t': os << "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buffer[8];
                        std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                        os << buffer;
                    } else {
                        os << c;
                    }
            }
        }
        os << '"';
    }

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::shared_ptr<Object> object_;
    std::shared_ptr<Array> array_;
};

/// The commit this artifact measures: the TEAMPLAY_GIT_SHA environment
/// variable when set (CI exports the exact SHA it checked out), else the
/// SHA baked in at configure time, else "unknown".
inline std::string git_sha() {
    if (const char* env = std::getenv("TEAMPLAY_GIT_SHA");
        env != nullptr && *env != '\0')
        return env;
#ifdef TEAMPLAY_GIT_SHA
    return TEAMPLAY_GIT_SHA;
#else
    return "unknown";
#endif
}

inline std::string utc_timestamp() {
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buffer;
}

/// Serialise `root` to `BENCH_<name>.json` in the working directory
/// (where CI collects artifacts).  The text is staged in a sibling
/// `.tmp` file and renamed into place, so a collector (or a crashed
/// bench) never observes a half-written artifact — the final path either
/// holds the previous complete run or the new one.  Returns false on I/O
/// failure — benches warn but do not fail the run over an unwritable
/// artifact.
///
/// Every artifact self-identifies: `git_sha` and `generated_utc` are
/// spliced into the front of the root object (non-object roots are
/// wrapped as `{"git_sha":...,"generated_utc":...,"data":<root>}`), so a
/// stray BENCH file can always be traced back to the commit and time that
/// produced it.
inline bool write_artifact(const std::string& name, const Value& root) {
    std::ostringstream os;
    root.dump(os);
    std::string text = os.str();
    std::ostringstream stamp;
    stamp << "\"git_sha\":";
    Value(git_sha()).dump(stamp);
    stamp << ",\"generated_utc\":\"" << utc_timestamp() << "\"";
    if (!text.empty() && text.front() == '{') {
        const bool empty_object = text == "{}";
        text = "{" + stamp.str() + (empty_object ? "" : ",") +
               text.substr(1);
    } else {
        text = "{" + stamp.str() + ",\"data\":" + text + "}";
    }
    text += '\n';
    const std::string path = "BENCH_" + name + ".json";
    const std::string staged = path + ".tmp";
    std::FILE* file = std::fopen(staged.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "warning: cannot write %s\n", staged.c_str());
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
    ok = std::fflush(file) == 0 && ok;
    std::fclose(file);
    if (!ok) {
        std::fprintf(stderr, "warning: short write to %s\n", staged.c_str());
        std::remove(staged.c_str());
        return false;
    }
    if (std::rename(staged.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "warning: cannot publish %s\n", path.c_str());
        std::remove(staged.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

}  // namespace teamplay::benchjson
