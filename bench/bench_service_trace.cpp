// Experiment E5: mixed-app service trace — Poisson arrivals through the
// streaming submission path.
//
// Models the engine as a long-lived service: UAV, camera-pill and rover
// scenarios arrive as a Poisson process (seeded exponential inter-arrival
// times) and are `submit`ted the moment they arrive; per-scenario
// completion latency (arrival -> completion callback) is sampled and the
// p50/p95 of the trace is reported per shard count (1/2/4).  The rover
// shares its perception kernels with the UAV, so the trace also exercises
// cross-program memoisation under service load: the router sends both apps'
// scenarios to the shard that already holds the shared entries.
//
// A second experiment replays the same trace twice against one persistent
// result store directory — a cold service filling the store, then a
// restarted service (fresh ResultStore instance, so the segment scan and
// mmap path run) warm-starting from it.  The warm phase must serve
// byte-identical certificates, recompute nothing that was stored (zero
// store misses), and show a lower completion p50; any violation fails the
// process, which is how the CI bench-smoke step gates the store.
//
// A third experiment drives the admission subsystem (DESIGN.md §12) into
// overload: arrival rate above service capacity, mixed priority classes,
// per-class deadlines and bounded queues.  Gates: the service actually
// sheds (rejected + shed > 0), the accounting is exact
// (completed + rejected + shed + cancelled == submitted, cross-checked
// against AdmissionStats), interactive p95 beats the all-equal baseline
// p95 on the identical trace, and every completed request's certificate
// is byte-identical to the no-admission baseline's.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/result_store.hpp"
#include "core/sharded_engine.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct Trace {
    std::vector<UseCaseApp> apps;  ///< owns programs/platforms
    std::vector<core::ScenarioRequest> requests;  ///< arrival order
    std::vector<double> gaps_s;                   ///< inter-arrival times
};

/// 45 arrivals, UAV/pill/rover round-robin, two scheduler-option variants,
/// mean inter-arrival 4 ms (a bursty but sustainable load for one host).
Trace make_trace(std::uint64_t seed = 7) {
    Trace trace;
    trace.apps.push_back(make_uav_app("apalis-tk1"));
    trace.apps.push_back(make_camera_pill_app());
    trace.apps.push_back(make_rover_app("apalis-tk1"));

    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> arrival(1.0 / 0.004);
    for (int i = 0; i < 45; ++i) {
        const auto& app = trace.apps[static_cast<std::size_t>(i) %
                                     trace.apps.size()];
        core::ScenarioRequest request;
        request.program = &app.program;
        request.platform = &app.platform;
        request.csl_source = app.csl_source;
        request.options.compiler.population = 6;
        request.options.compiler.iterations = 6;
        request.options.profile_runs = 8;
        request.options.scheduler.anneal_iterations = 80;
        if (i % 2 == 1) request.options.scheduler.seed = 7;
        request.label = app.name + "#" + std::to_string(i);
        trace.requests.push_back(std::move(request));
        trace.gaps_s.push_back(arrival(rng));
    }
    return trace;
}

struct Percentiles {
    double p50_ms = 0.0;
    double p95_ms = 0.0;
};

Percentiles percentiles(std::vector<double> latencies_s) {
    std::sort(latencies_s.begin(), latencies_s.end());
    const auto at = [&](double q) {
        const auto index = static_cast<std::size_t>(
            q * static_cast<double>(latencies_s.size() - 1));
        return 1e3 * latencies_s[index];
    };
    return {at(0.50), at(0.95)};
}

struct ReplayResult {
    std::vector<double> latencies_s;        ///< arrival -> completion
    std::vector<std::string> certificates;  ///< canonical text, trace order
    core::EvaluationCache::Stats cache;     ///< fold after the final flush
};

/// Replay the trace against a fresh sharded engine (optionally store-backed)
/// and flush the store before sampling cache statistics, so `cache.spills`
/// covers the whole replay.
ReplayResult replay(const Trace& trace, std::size_t shards,
                    std::size_t workers,
                    std::shared_ptr<core::ResultStore> store = nullptr) {
    core::ShardedScenarioEngine engine({.shards = shards,
                                        .worker_threads = workers,
                                        .result_store = std::move(store)});
    std::mutex mutex;
    ReplayResult result;
    result.latencies_s.assign(trace.requests.size(), 0.0);

    std::vector<core::ScenarioTicket> tickets;
    tickets.reserve(trace.requests.size());
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(trace.gaps_s[i]));
        const auto arrival = std::chrono::steady_clock::now();
        tickets.push_back(engine.submit(
            trace.requests[i],
            [&result, &mutex, i, arrival](const core::ScenarioOutcome&) {
                const double latency =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - arrival)
                        .count();
                const std::lock_guard<std::mutex> lock(mutex);
                result.latencies_s[i] = latency;
            }));
    }
    for (auto& ticket : tickets) ticket.wait();
    result.certificates.reserve(tickets.size());
    for (auto& ticket : tickets)
        result.certificates.push_back(
            ticket.get().certificate.to_text());
    engine.flush_result_store();
    result.cache = engine.cache_stats();
    return result;
}

/// Cold-vs-warm store phases: same trace and directory, two service
/// lifetimes.  Returns false (and prints why) on any gate violation.
bool run_store_phases(const Trace& trace, benchjson::Object* artifact) {
    namespace fs = std::filesystem;
    const fs::path store_dir =
        fs::temp_directory_path() / "teamplay_bench_service_trace_store";
    std::error_code ec;
    fs::remove_all(store_dir, ec);

    ReplayResult cold, warm;
    {
        auto store =
            std::make_shared<core::ResultStore>(store_dir.string());
        cold = replay(trace, 2, 4, store);
    }
    core::ResultStore::Stats warm_store;
    {
        // A *new* instance over the same directory: the warm phase goes
        // through the restarted-process path — segment scan, mmap, lazy
        // verify-on-load.
        auto store =
            std::make_shared<core::ResultStore>(store_dir.string());
        warm = replay(trace, 2, 4, store);
        warm_store = store->stats();
    }
    fs::remove_all(store_dir, ec);

    const auto cold_stats = percentiles(cold.latencies_s);
    const auto warm_stats = percentiles(warm.latencies_s);
    const bool identical = cold.certificates == warm.certificates;
    const bool no_recompute = warm.cache.store_misses == 0;
    const bool faster = warm_stats.p50_ms < cold_stats.p50_ms;

    std::printf("store cold:  p50 %8.2f ms, p95 %8.2f ms "
                "(%llu spills)\n",
                cold_stats.p50_ms, cold_stats.p95_ms,
                static_cast<unsigned long long>(cold.cache.spills));
    std::printf("store warm:  p50 %8.2f ms, p95 %8.2f ms "
                "(%llu store hits / %llu store misses, %zu indexed)\n",
                warm_stats.p50_ms, warm_stats.p95_ms,
                static_cast<unsigned long long>(warm.cache.store_hits),
                static_cast<unsigned long long>(warm.cache.store_misses),
                warm_store.indexed);
    if (!identical)
        std::printf("store FAIL: warm certificates differ from cold\n");
    if (!no_recompute)
        std::printf("store FAIL: warm run recomputed %llu stored keys\n",
                    static_cast<unsigned long long>(
                        warm.cache.store_misses));
    if (!faster)
        std::printf("store FAIL: warm p50 not below cold p50\n");

    artifact->push_back(
        {"store_phases",
         benchjson::Object{
             {"cold_p50_ms", cold_stats.p50_ms},
             {"cold_p95_ms", cold_stats.p95_ms},
             {"cold_spills", cold.cache.spills},
             {"warm_p50_ms", warm_stats.p50_ms},
             {"warm_p95_ms", warm_stats.p95_ms},
             {"warm_store_hits", warm.cache.store_hits},
             {"warm_store_misses", warm.cache.store_misses},
             {"store_indexed", warm_store.indexed},
             {"certificates_identical", identical},
             {"warm_faster", faster},
         }});
    return identical && no_recompute && faster;
}

/// Cancellation-rate sensitivity: replay the trace while cancelling a
/// seeded subset of tickets right after submission (mid-flight: some are
/// still queued and die unstarted, some already run and complete).  Rows
/// report how survivor completion latency moves as 0/10/30% of the load
/// is cancelled.  Gates are on the *accounting*, which must be exact at
/// every rate: no cancellations observed at 0%, every ticket either
/// completes or raises CancelledError, and nothing else throws.
bool run_cancellation_sweep(const Trace& trace,
                            benchjson::Object* artifact) {
    benchjson::Array rows;
    bool ok = true;
    for (const int percent : {0, 10, 30}) {
        core::ShardedScenarioEngine engine(
            {.shards = 2, .worker_threads = 4});
        std::mt19937_64 rng(1234 + static_cast<std::uint64_t>(percent));
        std::bernoulli_distribution pick(percent / 100.0);

        std::mutex mutex;
        std::vector<double> survivor_latencies;
        std::vector<core::ScenarioTicket> tickets;
        tickets.reserve(trace.requests.size());
        std::size_t requested = 0;
        for (std::size_t i = 0; i < trace.requests.size(); ++i) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(trace.gaps_s[i]));
            const auto arrival = std::chrono::steady_clock::now();
            tickets.push_back(engine.submit(
                trace.requests[i],
                [&survivor_latencies, &mutex,
                 arrival](const core::ScenarioOutcome& outcome) {
                    if (outcome.report == nullptr) return;
                    const double latency =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - arrival)
                            .count();
                    const std::lock_guard<std::mutex> lock(mutex);
                    survivor_latencies.push_back(latency);
                }));
            if (pick(rng)) {
                ++requested;
                tickets.back().cancel();
            }
        }

        std::size_t completed = 0;
        std::size_t cancelled = 0;
        std::size_t errors = 0;
        for (auto& ticket : tickets) {
            try {
                (void)ticket.get();
                ++completed;
            } catch (const core::CancelledError&) {
                ++cancelled;
            } catch (...) {
                ++errors;
            }
        }

        const bool accounted =
            completed + cancelled == trace.requests.size() &&
            errors == 0 && cancelled <= requested &&
            (percent > 0 || cancelled == 0);
        const auto stats = survivor_latencies.empty()
                               ? Percentiles{}
                               : percentiles(survivor_latencies);
        std::printf("cancel %2d%%: %2zu cancelled of %2zu requested, "
                    "survivors p50 %8.2f ms, p95 %8.2f ms%s\n",
                    percent, cancelled, requested, stats.p50_ms,
                    stats.p95_ms, accounted ? "" : "  [FAIL accounting]");
        if (!accounted)
            std::printf("cancel FAIL: %zu completed + %zu cancelled + "
                        "%zu errors over %zu tickets (rate %d%%)\n",
                        completed, cancelled, errors,
                        trace.requests.size(), percent);
        ok = ok && accounted;
        rows.push_back(benchjson::Value(benchjson::Object{
            {"rate_percent", percent},
            {"requested", requested},
            {"cancelled", cancelled},
            {"completed", completed},
            {"survivor_p50_ms", stats.p50_ms},
            {"survivor_p95_ms", stats.p95_ms},
        }));
    }
    artifact->push_back({"cancellation_sweep", std::move(rows)});
    return ok;
}

/// 36 arrivals at mean gap 2 ms — well above what two workers can serve —
/// with a distinct compiler seed per arrival so every scenario is unique
/// work (no cache hit can deflate the overload) and the priority classes
/// interleaved round-robin: interactive, batch, background, repeat.
Trace make_overload_trace(std::uint64_t seed = 11) {
    Trace trace;
    trace.apps.push_back(make_uav_app("apalis-tk1"));
    trace.apps.push_back(make_camera_pill_app());
    trace.apps.push_back(make_rover_app("apalis-tk1"));

    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> arrival(1.0 / 0.002);
    for (int i = 0; i < 36; ++i) {
        const auto& app = trace.apps[static_cast<std::size_t>(i) %
                                     trace.apps.size()];
        core::ScenarioRequest request;
        request.program = &app.program;
        request.platform = &app.platform;
        request.csl_source = app.csl_source;
        request.options.compiler.population = 6;
        request.options.compiler.iterations = 6;
        request.options.profile_runs = 8;
        request.options.scheduler.anneal_iterations = 80;
        request.options.compiler.seed =
            100 + static_cast<std::uint64_t>(i);
        request.priority = static_cast<core::Priority>(i % 3);
        request.label = app.name + "#ovl" + std::to_string(i);
        trace.requests.push_back(std::move(request));
        trace.gaps_s.push_back(arrival(rng));
    }
    return trace;
}

/// Overload + mixed-priority phase.  Two runs over the identical trace:
/// an all-equal baseline (batch priority, no deadlines, unbounded queues
/// — the p95 reference *and* the certificate oracle), then the admission
/// run (per-class deadlines and bounded queues on the same two workers).
bool run_overload_phase(benchjson::Object* artifact) {
    using Clock = std::chrono::steady_clock;
    const auto trace = make_overload_trace();

    std::map<std::string, std::string> baseline_certs;
    std::vector<double> baseline_latencies(trace.requests.size(), 0.0);
    {
        core::ShardedScenarioEngine engine(
            {.shards = 1, .worker_threads = 2});
        std::mutex mutex;
        std::vector<core::ScenarioTicket> tickets;
        tickets.reserve(trace.requests.size());
        for (std::size_t i = 0; i < trace.requests.size(); ++i) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(trace.gaps_s[i]));
            auto request = trace.requests[i];
            request.priority = core::Priority::kBatch;
            request.deadline.reset();
            const auto arrival = Clock::now();
            tickets.push_back(engine.submit(
                std::move(request),
                [&baseline_latencies, &mutex, i,
                 arrival](const core::ScenarioOutcome&) {
                    const double latency =
                        std::chrono::duration<double>(Clock::now() -
                                                      arrival)
                            .count();
                    const std::lock_guard<std::mutex> lock(mutex);
                    baseline_latencies[i] = latency;
                }));
        }
        for (std::size_t i = 0; i < tickets.size(); ++i)
            baseline_certs[trace.requests[i].label] =
                tickets[i].get().certificate.to_text();
    }
    const auto baseline_stats = percentiles(baseline_latencies);

    // Admission run: interactive rides free (no deadline, unbounded — it
    // must complete, that is the class the p95 gate measures), batch gets
    // 400 ms and a queue of 6, background 200 ms and a queue of 3.
    core::ShardedScenarioEngine engine(
        {.shards = 1,
         .worker_threads = 2,
         .admission = {.queue_depths = {0, 6, 3}}});
    std::mutex mutex;
    std::vector<double> interactive_latencies;
    std::vector<core::ScenarioTicket> tickets;
    tickets.reserve(trace.requests.size());
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(trace.gaps_s[i]));
        auto request = trace.requests[i];
        if (request.priority == core::Priority::kBatch)
            request.deadline =
                Clock::now() + std::chrono::milliseconds(400);
        else if (request.priority == core::Priority::kBackground)
            request.deadline =
                Clock::now() + std::chrono::milliseconds(200);
        const bool interactive =
            request.priority == core::Priority::kInteractive;
        const auto arrival = Clock::now();
        tickets.push_back(engine.submit(
            std::move(request),
            [&interactive_latencies, &mutex, interactive,
             arrival](const core::ScenarioOutcome& outcome) {
                if (!interactive || outcome.report == nullptr) return;
                const double latency =
                    std::chrono::duration<double>(Clock::now() - arrival)
                        .count();
                const std::lock_guard<std::mutex> lock(mutex);
                interactive_latencies.push_back(latency);
            }));
    }

    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t shed = 0;
    std::size_t cancelled = 0;
    std::size_t errors = 0;
    bool certs_identical = true;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        try {
            const auto report = tickets[i].get();
            ++completed;
            // Admission is certificate-blind: a request that survives the
            // traffic management must produce the same bytes it produces
            // with none.
            certs_identical =
                certs_identical &&
                report.certificate.to_text() ==
                    baseline_certs[trace.requests[i].label];
        } catch (const core::ShedError& e) {
            if (e.reason() == core::ShedError::Reason::kQueueFull ||
                e.reason() ==
                    core::ShedError::Reason::kDeadlineUnmeetable)
                ++rejected;
            else
                ++shed;
        } catch (const core::CancelledError&) {
            ++cancelled;
        } catch (...) {
            ++errors;
        }
    }

    const auto totals = engine.admission_stats().totals();
    const bool overloaded = rejected + shed > 0;
    const bool accounted =
        completed + rejected + shed + cancelled ==
            trace.requests.size() &&
        errors == 0;
    const bool stats_match = totals.submitted == trace.requests.size() &&
                             totals.completed == completed &&
                             totals.rejected == rejected &&
                             totals.shed == shed &&
                             totals.cancelled == cancelled &&
                             totals.failed == 0;
    const auto interactive_stats = interactive_latencies.empty()
                                       ? Percentiles{}
                                       : percentiles(interactive_latencies);
    const bool priority_win = !interactive_latencies.empty() &&
                              interactive_stats.p95_ms <
                                  baseline_stats.p95_ms;

    std::printf("overload baseline (all equal): p50 %8.2f ms, "
                "p95 %8.2f ms over %zu arrivals\n",
                baseline_stats.p50_ms, baseline_stats.p95_ms,
                trace.requests.size());
    std::printf("overload admission: interactive p95 %8.2f ms "
                "(%zu completed, %zu rejected, %zu shed, %zu cancelled)\n",
                interactive_stats.p95_ms, completed, rejected, shed,
                cancelled);
    if (!overloaded)
        std::printf("overload FAIL: nothing rejected or shed — the trace "
                    "did not overload the service\n");
    if (!accounted)
        std::printf("overload FAIL: %zu completed + %zu rejected + "
                    "%zu shed + %zu cancelled + %zu errors != %zu\n",
                    completed, rejected, shed, cancelled, errors,
                    trace.requests.size());
    if (!stats_match)
        std::printf("overload FAIL: ticket outcomes disagree with "
                    "AdmissionStats (%s)\n",
                    engine.admission_stats().to_string().c_str());
    if (!priority_win)
        std::printf("overload FAIL: interactive p95 %.2f ms not below "
                    "all-equal baseline p95 %.2f ms\n",
                    interactive_stats.p95_ms, baseline_stats.p95_ms);
    if (!certs_identical)
        std::printf("overload FAIL: a completed request's certificate "
                    "differs from the no-admission baseline\n");

    artifact->push_back(
        {"overload_phase",
         benchjson::Object{
             {"arrivals", trace.requests.size()},
             {"baseline_p50_ms", baseline_stats.p50_ms},
             {"baseline_p95_ms", baseline_stats.p95_ms},
             {"interactive_p95_ms", interactive_stats.p95_ms},
             {"completed", completed},
             {"rejected", rejected},
             {"shed", shed},
             {"cancelled", cancelled},
             {"accounting_exact", accounted && stats_match},
             {"priority_win", priority_win},
             {"certificates_identical", certs_identical},
         }});
    return overloaded && accounted && stats_match && priority_win &&
           certs_identical;
}

bool print_table() {
    const auto trace = make_trace();
    std::printf("=== E5: service trace, %zu Poisson arrivals "
                "(uav/pill/rover round-robin) ===\n",
                trace.requests.size());
    benchjson::Array shard_rows;
    for (const std::size_t shards : {1UL, 2UL, 4UL}) {
        const auto stats =
            percentiles(replay(trace, shards, 4).latencies_s);
        std::printf("%zu shard(s): completion latency p50 %8.2f ms, "
                    "p95 %8.2f ms\n",
                    shards, stats.p50_ms, stats.p95_ms);
        shard_rows.push_back(benchjson::Value(benchjson::Object{
            {"shards", shards},
            {"p50_ms", stats.p50_ms},
            {"p95_ms", stats.p95_ms},
        }));
    }
    benchjson::Object artifact{
        {"experiment", "service_trace"},
        {"arrivals", trace.requests.size()},
        {"workers_per_replay", 4},
        {"shard_sweep", std::move(shard_rows)},
    };
    const bool cancel_ok = run_cancellation_sweep(trace, &artifact);
    const bool store_ok = run_store_phases(trace, &artifact);
    const bool overload_ok = run_overload_phase(&artifact);
    benchjson::write_artifact("service_trace",
                              benchjson::Value(std::move(artifact)));
    return store_ok && cancel_ok && overload_ok;
}

void BM_ServiceTrace(benchmark::State& state) {
    const auto trace = make_trace();
    const auto shards = static_cast<std::size_t>(state.range(0));
    std::vector<double> all;
    for (auto _ : state) {
        const auto latencies = replay(trace, shards, 4).latencies_s;
        all.insert(all.end(), latencies.begin(), latencies.end());
    }
    const auto stats = percentiles(std::move(all));
    state.counters["p50_ms"] = stats.p50_ms;
    state.counters["p95_ms"] = stats.p95_ms;
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(trace.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceTrace)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    // A store-phase gate violation (certificate drift, a warm recompute,
    // no warm speedup) must fail the process: the CI bench-smoke step
    // relies on this exit code.
    const bool store_ok = print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return store_ok ? 0 : 1;
}
