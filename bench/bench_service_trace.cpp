// Experiment E5: mixed-app service trace — Poisson arrivals through the
// streaming submission path.
//
// Models the engine as a long-lived service: UAV, camera-pill and rover
// scenarios arrive as a Poisson process (seeded exponential inter-arrival
// times) and are `submit`ted the moment they arrive; per-scenario
// completion latency (arrival -> completion callback) is sampled and the
// p50/p95 of the trace is reported per shard count (1/2/4).  The rover
// shares its perception kernels with the UAV, so the trace also exercises
// cross-program memoisation under service load: the router sends both apps'
// scenarios to the shard that already holds the shared entries.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/sharded_engine.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct Trace {
    std::vector<UseCaseApp> apps;  ///< owns programs/platforms
    std::vector<core::ScenarioRequest> requests;  ///< arrival order
    std::vector<double> gaps_s;                   ///< inter-arrival times
};

/// 45 arrivals, UAV/pill/rover round-robin, two scheduler-option variants,
/// mean inter-arrival 4 ms (a bursty but sustainable load for one host).
Trace make_trace(std::uint64_t seed = 7) {
    Trace trace;
    trace.apps.push_back(make_uav_app("apalis-tk1"));
    trace.apps.push_back(make_camera_pill_app());
    trace.apps.push_back(make_rover_app("apalis-tk1"));

    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> arrival(1.0 / 0.004);
    for (int i = 0; i < 45; ++i) {
        const auto& app = trace.apps[static_cast<std::size_t>(i) %
                                     trace.apps.size()];
        core::ScenarioRequest request;
        request.program = &app.program;
        request.platform = &app.platform;
        request.csl_source = app.csl_source;
        request.options.compiler.population = 6;
        request.options.compiler.iterations = 6;
        request.options.profile_runs = 8;
        request.options.scheduler.anneal_iterations = 80;
        if (i % 2 == 1) request.options.scheduler.seed = 7;
        request.label = app.name + "#" + std::to_string(i);
        trace.requests.push_back(std::move(request));
        trace.gaps_s.push_back(arrival(rng));
    }
    return trace;
}

struct Percentiles {
    double p50_ms = 0.0;
    double p95_ms = 0.0;
};

Percentiles percentiles(std::vector<double> latencies_s) {
    std::sort(latencies_s.begin(), latencies_s.end());
    const auto at = [&](double q) {
        const auto index = static_cast<std::size_t>(
            q * static_cast<double>(latencies_s.size() - 1));
        return 1e3 * latencies_s[index];
    };
    return {at(0.50), at(0.95)};
}

/// Replay the trace against a fresh sharded engine; returns per-scenario
/// completion latencies (arrival -> completion callback).
std::vector<double> replay(const Trace& trace, std::size_t shards,
                           std::size_t workers) {
    core::ShardedScenarioEngine engine(
        {.shards = shards, .worker_threads = workers});
    std::mutex mutex;
    std::vector<double> latencies_s(trace.requests.size(), 0.0);

    std::vector<core::ScenarioTicket> tickets;
    tickets.reserve(trace.requests.size());
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(trace.gaps_s[i]));
        const auto arrival = std::chrono::steady_clock::now();
        tickets.push_back(engine.submit(
            trace.requests[i],
            [&latencies_s, &mutex, i,
             arrival](const core::ScenarioOutcome&) {
                const double latency =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - arrival)
                        .count();
                const std::lock_guard<std::mutex> lock(mutex);
                latencies_s[i] = latency;
            }));
    }
    for (auto& ticket : tickets) ticket.wait();
    return latencies_s;
}

void print_table() {
    const auto trace = make_trace();
    std::printf("=== E5: service trace, %zu Poisson arrivals "
                "(uav/pill/rover round-robin) ===\n",
                trace.requests.size());
    benchjson::Array shard_rows;
    for (const std::size_t shards : {1UL, 2UL, 4UL}) {
        const auto stats = percentiles(replay(trace, shards, 4));
        std::printf("%zu shard(s): completion latency p50 %8.2f ms, "
                    "p95 %8.2f ms\n",
                    shards, stats.p50_ms, stats.p95_ms);
        shard_rows.push_back(benchjson::Value(benchjson::Object{
            {"shards", shards},
            {"p50_ms", stats.p50_ms},
            {"p95_ms", stats.p95_ms},
        }));
    }
    benchjson::write_artifact(
        "service_trace",
        benchjson::Value(benchjson::Object{
            {"experiment", "service_trace"},
            {"arrivals", trace.requests.size()},
            {"workers_per_replay", 4},
            {"shard_sweep", std::move(shard_rows)},
        }));
}

void BM_ServiceTrace(benchmark::State& state) {
    const auto trace = make_trace();
    const auto shards = static_cast<std::size_t>(state.range(0));
    std::vector<double> all;
    for (auto _ : state) {
        const auto latencies = replay(trace, shards, 4);
        all.insert(all.end(), latencies.begin(), latencies.end());
    }
    const auto stats = percentiles(std::move(all));
    state.counters["p50_ms"] = stats.p50_ms;
    state.counters["p95_ms"] = stats.p95_ms;
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(trace.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceTrace)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
