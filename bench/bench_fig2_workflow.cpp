// Experiment F2 (Fig. 2): the complex-architecture workflow's two passes.
//
// Pass 1 (solid path): sequential glue + PowProfiler measurement of every
// task.  Pass 2 (dashed path): energy-aware parallel schedule built from the
// estimates.  The bench reports what each pass produced and the speedup /
// energy effect of going parallel, plus the profiler's convergence (how the
// estimate tightens with more runs) — the property that makes
// measurement-based budgets usable.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/scenario_engine.hpp"
#include "coordination/runtime.hpp"
#include "profiler/pow_profiler.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

void print_table() {
    const auto app = make_uav_app("jetson-tx2");
    const auto spec = csl::parse(app.csl_source);

    std::puts("=== F2: complex workflow, two passes on Jetson TX2 ===");

    // Pass 1: sequential execution time (what the profiling binary does).
    double sequential_time = 0.0;
    {
        sim::Machine machine(app.program, app.platform.cores[0],
                             app.platform.cores[0].max_opp(), 17);
        machine.poke(uav::kState, 5);
        for (const auto& task : spec.tasks)
            sequential_time += machine.run(task.entry, {}).time_s;
    }

    core::ScenarioEngine engine;
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.profile_runs = 20;
    const auto report = engine.run(request);

    const auto replay = coordination::execute_schedule(
        report.graph, report.schedule,
        coordination::RuntimeOptions{.jitter_sigma = 0.05, .seed = 5});

    std::printf("pass 1: sequential binary %s/frame, profiling glue %zu "
                "bytes\n",
                support::format_time(sequential_time).c_str(),
                report.sequential_glue.size());
    std::printf("pass 2: parallel schedule %s/frame (replayed %s), "
                "glue %zu bytes\n",
                support::format_time(report.schedule.makespan_s).c_str(),
                support::format_time(replay.makespan_s).c_str(),
                report.glue_code.size());
    std::printf("certificate: %s (measured evidence: %s)\n",
                report.certificate.all_hold() ? "all contracts hold"
                                              : "VIOLATION",
                report.certificate.fully_static() ? "no" : "yes");
    std::printf("paper:    pass 1 profiles sequentially, pass 2 exploits "
                "platform parallelism\npaper:    complex targets cannot be "
                "statically analysed\nmeasured: parallel schedule is %.2fx "
                "the sequential frame time\n\n",
                report.schedule.makespan_s / sequential_time);

    // Profiler convergence: estimate spread vs number of runs.
    std::puts("PowProfiler convergence on uav_detect (complex core):");
    std::printf("%8s %14s %14s %14s\n", "runs", "mean", "p95", "HWM");
    for (const int runs : {5, 10, 20, 40, 80}) {
        profiler::PowProfiler prof(app.program, app.platform.cores[0], 1,
                                   /*seed=*/99);
        const auto profile =
            prof.profile("uav_detect", profiler::zero_inputs(0), runs);
        std::printf("%8d %14s %14s %14s\n", runs,
                    support::format_time(profile.time_s.mean).c_str(),
                    support::format_time(profile.time_s.p95).c_str(),
                    support::format_time(
                        profile.time_s.high_water_mark())
                        .c_str());
    }
    std::puts("");
}

void BM_Fig2Pass1Profiling(benchmark::State& state) {
    const auto app = make_uav_app("jetson-tx2");
    const auto spec = csl::parse(app.csl_source);
    profiler::PowProfiler prof(app.program, app.platform.cores[0], 1, 23);
    for (auto _ : state) {
        for (const auto& task : spec.tasks)
            benchmark::DoNotOptimize(prof.profile(
                task.entry, profiler::zero_inputs(0),
                static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_Fig2Pass1Profiling)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_Fig2EndToEnd(benchmark::State& state) {
    const auto app = make_uav_app("jetson-tx2");
    const auto spec = csl::parse(app.csl_source);
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.profile_runs = 8;
    for (auto _ : state) {
        core::ScenarioEngine engine;  // cold cache per iteration
        benchmark::DoNotOptimize(engine.run(request));
    }
}
BENCHMARK(BM_Fig2EndToEnd)->Unit(benchmark::kMillisecond);

void BM_Fig2EndToEndWarmCache(benchmark::State& state) {
    const auto app = make_uav_app("jetson-tx2");
    const auto spec = csl::parse(app.csl_source);
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options.profile_runs = 8;
    core::ScenarioEngine engine;  // profiling campaigns memoised across runs
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run(request));
}
BENCHMARK(BM_Fig2EndToEndWarmCache)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
