// Experiment R4 (Sec. IV-C, precision-agriculture UAV): reproduce "when
// cruising, the mechanical components of the UAV consumed 28 Watts on
// average, whereas software components consumed between 2 and 11 Watts, with
// the toolchain enabling in-flight battery-aware schedulability".
//
// Sweeps software configurations (DVFS level x active pipeline stages) on
// the Jetson TX2 payload and reports the payload power band; then runs the
// battery-aware decision loop: given the remaining battery, pick the most
// capable configuration whose power still meets the required endurance.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/workflow.hpp"
#include "energy/component_model.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct SwConfig {
    const char* name;
    std::size_t opp;        ///< DVFS index applied to every version choice
    int frames_per_second;  ///< detection duty cycle
};

constexpr SwConfig kConfigs[] = {
    {"eco       (min freq,  1 fps)", 0, 1},
    {"low       (min freq,  2 fps)", 0, 2},
    {"balanced  (mid freq,  5 fps)", 1, 5},
    {"perf      (mid freq, 10 fps)", 2, 10},
    {"max       (max freq, 20 fps)", 3, 20},
};

/// Hardware substitution note (DESIGN.md §2): the simulated frames are
/// 64x48; the PA camera streams ~1080p, i.e. ~700x the pixel load per frame.
/// Per-core busy time from the schedule is scaled accordingly before being
/// fed into the TX2 component power model — the exact modelling route the
/// paper's UAV work takes (coarse component model x utilisation [18][19]).
constexpr double kResolutionScale = 700.0;

/// Payload power of one configuration: component model driven by the
/// utilisations the schedule induces at the configured frame rate and OPP.
double payload_power_w(const core::ToolchainReport& report,
                       const platform::Platform& platform,
                       const SwConfig& config) {
    // Busy seconds per core class for one frame at the swept OPP.
    double cpu_busy = 0.0;
    double gpu_busy = 0.0;
    double mem_busy = 0.0;
    for (const auto& entry : report.schedule.entries) {
        const auto& core = platform.cores[entry.core];
        const auto from_index = entry.opp_index;
        const auto to_index = std::min(config.opp, core.max_opp());
        const double duration = (entry.finish_s - entry.start_s) *
                                core.opp(from_index).freq_hz /
                                core.opp(to_index).freq_hz;
        if (core.core_class == "gpu")
            gpu_busy += duration;
        else
            cpu_busy += duration;
        mem_busy += duration * 0.6;  // memory controller shadows compute
    }

    // Utilisation at the configured frame rate, with the resolution scale.
    const auto fps = static_cast<double>(config.frames_per_second);
    const auto util = [fps](double busy) {
        return std::min(1.0, busy * kResolutionScale * fps);
    };

    // TX2-style component model (validated in bench_energy_model).
    const energy::ComponentModel model{
        .idle_w = 1.9, .component_w = {4.5, 7.0, 2.0}};
    return model.predict_w({util(cpu_busy), util(gpu_busy), util(mem_busy)});
}

void print_table() {
    const auto app = make_uav_app("jetson-tx2");
    const auto spec = csl::parse(app.csl_source);
    core::ComplexWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.profile_runs = 15;
    const auto report = workflow.run(spec, options);

    std::puts("=== R4: PA UAV payload power band on Jetson TX2 (Sec. IV-C) ===");
    std::printf("%-34s %12s %16s\n", "software configuration", "power",
                "endurance @68Wh");
    std::vector<double> powers;
    for (const auto& config : kConfigs) {
        const double power = payload_power_w(report, app.platform, config);
        powers.push_back(power);
        energy::MissionPower mission{.battery_wh = 68.0,
                                     .mechanical_w = 28.0,
                                     .electronics_w = power};
        std::printf("%-34s %12s %13.0f min\n", config.name,
                    support::format_power(power).c_str(),
                    mission.flight_time_s() / 60.0);
    }
    std::printf("paper:    software band 2..11 W (mechanical 28 W)\n");
    std::printf("measured: software band %.1f..%.1f W (mechanical 28 W)\n\n",
                *std::min_element(powers.begin(), powers.end()),
                *std::max_element(powers.begin(), powers.end()));

    // Battery-aware schedulability [31]: with the battery draining, the
    // planner steps down configurations so that the remaining endurance
    // stays above the 60 minutes needed to finish the survey leg and
    // return.  The most capable configuration that still meets the reserve
    // wins; none feasible means return-to-home now.
    std::puts("in-flight battery-aware selection (60 min reserve needed):");
    for (const double battery_wh : {45.0, 34.0, 32.5, 31.2, 25.0}) {
        const char* chosen = "return to home immediately";
        for (std::size_t i = sizeof kConfigs / sizeof kConfigs[0]; i-- > 0;) {
            energy::MissionPower mission{.battery_wh = battery_wh,
                                         .mechanical_w = 28.0,
                                         .electronics_w = powers[i]};
            if (mission.flight_time_s() >= 60.0 * 60.0) {
                chosen = kConfigs[i].name;
                break;
            }
        }
        std::printf("  battery %5.1f Wh -> %s\n", battery_wh, chosen);
    }
    std::puts("");
}

void BM_ComponentModelFit(benchmark::State& state) {
    support::Rng rng(5);
    std::vector<energy::PowerSample> samples;
    for (int i = 0; i < 200; ++i) {
        energy::PowerSample sample;
        sample.utilisation = {rng.uniform(), rng.uniform(), rng.uniform()};
        sample.power_w = 1.9 + 4.5 * sample.utilisation[0] +
                         7.0 * sample.utilisation[1] +
                         2.0 * sample.utilisation[2] +
                         rng.gaussian(0.0, 0.05);
        samples.push_back(std::move(sample));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(energy::fit_component_model(samples));
}
BENCHMARK(BM_ComponentModelFit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
