// Experiment R1 (Sec. IV-A, camera pill): reproduce the headline result
// "applying the TeamPlay methodology led to an improvement of 18%
// performance and 19% energy usage over the use of traditional toolchains".
//
// Traditional = fixed -O-style scalar passes, no unrolling/inlining/LICM, no
// multi-objective exploration, maximum frequency.  TeamPlay = multi-criteria
// compiler + energy-aware coordination, per the Fig. 1 workflow.
//
// The binary first prints the paper-vs-measured table, then runs
// google-benchmark timings of the underlying toolchain operations.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/workflow.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"
#include "wcet/analyser.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct PillComparison {
    double traditional_wcet_s = 0.0;
    double teamplay_wcet_s = 0.0;
    double traditional_energy_j = 0.0;
    double teamplay_energy_j = 0.0;
    bool certificate_ok = false;
};

PillComparison run_comparison() {
    const auto app = make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    const auto& m0 = app.platform.cores[0];

    PillComparison result;
    const compiler::MultiCriteriaCompiler mcc(app.program, m0);

    // TeamPlay: the full predictable workflow.
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 12;
    options.compiler.iterations = 12;
    const auto report = workflow.run(spec, options);
    result.certificate_ok = report.certificate.all_hold() &&
                            contracts::verify_certificate(report.certificate);

    // Performance: the fastest variant the multi-criteria compiler found
    // (the WCC "trades execution time" half of the claim).  Energy: the
    // version the energy-aware coordination actually deploys within the
    // deadline (the DVFS/coordination half).
    for (const auto& task : spec.tasks) {
        const auto traditional =
            mcc.compile(task.entry, mcc.traditional_config());
        result.traditional_wcet_s += traditional.wcet_s;
        result.traditional_energy_j += traditional.wcec_j;

        double best_wcet = traditional.wcet_s;
        for (const auto& front : report.fronts)
            if (front.task == task.name)
                for (const auto& version : front.versions)
                    if (version.config.opp_index ==
                            mcc.traditional_config().opp_index &&
                        version.wcet_s < best_wcet)
                        best_wcet = version.wcet_s;
        result.teamplay_wcet_s += best_wcet;

        const auto* chosen = report.chosen_version(task.name);
        result.teamplay_energy_j +=
            chosen != nullptr ? chosen->wcec_j : traditional.wcec_j;
    }
    return result;
}

void print_table() {
    const auto cmp = run_comparison();
    const double perf_gain =
        (1.0 - cmp.teamplay_wcet_s / cmp.traditional_wcet_s) * 100.0;
    const double energy_gain =
        (1.0 - cmp.teamplay_energy_j / cmp.traditional_energy_j) * 100.0;

    std::puts("=== R1: camera pill, traditional vs TeamPlay (Sec. IV-A) ===");
    std::printf("%-28s %14s %14s %10s\n", "metric", "traditional",
                "TeamPlay", "gain");
    std::printf("%-28s %14s %14s %9.1f%%\n", "pipeline WCET (per frame)",
                support::format_time(cmp.traditional_wcet_s).c_str(),
                support::format_time(cmp.teamplay_wcet_s).c_str(), perf_gain);
    std::printf("%-28s %14s %14s %9.1f%%\n", "pipeline WCEC (per frame)",
                support::format_energy(cmp.traditional_energy_j).c_str(),
                support::format_energy(cmp.teamplay_energy_j).c_str(),
                energy_gain);
    std::printf("%-28s %14s %14s\n", "certificate",
                "-", cmp.certificate_ok ? "green" : "RED");
    std::printf("paper:    18%% performance, 19%% energy improvement\n");
    std::printf("measured: %.0f%% performance, %.0f%% energy improvement\n\n",
                perf_gain, energy_gain);
}

// -- google-benchmark cases over the underlying operations --------------------

void BM_PillFrameSimulation(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    sim::Machine machine(app.program, app.platform.cores[0], 2);
    stage_xtea_key(machine, {1, 2, 3, 4});
    machine.poke(pill::kState, 7);
    for (auto _ : state) {
        for (const auto* task : {"pill_capture", "pill_delta",
                                 "pill_compress", "pill_encrypt",
                                 "pill_transmit"})
            benchmark::DoNotOptimize(machine.run(task, {}).cycles);
    }
}
BENCHMARK(BM_PillFrameSimulation)->Unit(benchmark::kMillisecond);

void BM_PillWcetAnalysis(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    const wcet::Analyser analyser(app.program);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            analyser.analyse("pill_encrypt", app.platform.cores[0], 2));
}
BENCHMARK(BM_PillWcetAnalysis)->Unit(benchmark::kMicrosecond);

void BM_PillCompileVariant(benchmark::State& state) {
    const auto app = make_camera_pill_app();
    const compiler::MultiCriteriaCompiler mcc(app.program,
                                              app.platform.cores[0]);
    compiler::PassConfig config;
    config.unroll_factor = 8;
    config.inline_calls_pass = true;
    config.licm = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(mcc.compile("pill_encrypt", config));
}
BENCHMARK(BM_PillCompileVariant)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
