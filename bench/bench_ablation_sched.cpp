// Ablation A2: value of energy-aware multi-version scheduling (DESIGN.md
// §5.3; Roeder et al. [20]).
//
// Random task DAGs with fast/frugal version pairs are scheduled on the
// Jetson TX2 under three policies — energy-aware multi-version (TeamPlay),
// HEFT-style makespan-only, and single-version (fastest only, the classic
// flow without the multi-version interface).  Reports mean platform energy
// vs the TeamPlay policy across deadline tightness levels.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "coordination/scheduler.hpp"
#include "platform/platform.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

using namespace teamplay;

namespace {

coordination::TaskGraph random_dag(support::Rng& rng, int tasks) {
    coordination::TaskGraph graph;
    graph.app_name = "synthetic";
    for (int i = 0; i < tasks; ++i) {
        coordination::Task task;
        task.name = "t" + std::to_string(i);
        task.entry_fn = task.name;
        // Layered DAG: depend on up to two earlier tasks.
        if (i > 0) {
            const int deps = static_cast<int>(rng.below(3));
            for (int d = 0; d < deps; ++d)
                task.deps.push_back(
                    "t" + std::to_string(rng.below(static_cast<std::uint64_t>(i))));
            std::sort(task.deps.begin(), task.deps.end());
            task.deps.erase(
                std::unique(task.deps.begin(), task.deps.end()),
                task.deps.end());
        }
        const double base_time = rng.uniform(0.002, 0.02);
        const double base_energy = base_time * rng.uniform(10.0, 40.0) * 0.05;
        // Fast version: high OPP (index valid on every TX2 core including
        // the 3-point GPU).  Frugal version: ~2.2x slower, ~45% energy.
        task.versions[""] = {
            {base_time, base_energy, 0.0, 2, "fast"},
            {base_time * 2.2, base_energy * 0.45, 0.0, 0, "frugal"},
        };
        graph.tasks.push_back(std::move(task));
    }
    return graph;
}

void print_table() {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);

    std::puts("=== A2: scheduler ablation on random DAGs (Jetson TX2) ===");
    std::printf("%-22s %16s %16s %16s\n", "deadline slack",
                "TeamPlay energy", "HEFT-only", "single-version");

    for (const double slack : {1.1, 1.5, 2.5, 4.0}) {
        double teamplay_acc = 0.0;
        double heft_acc = 0.0;
        double single_acc = 0.0;
        int feasible = 0;
        constexpr int kDags = 12;
        for (int trial = 0; trial < kDags; ++trial) {
            support::Rng rng(1000 + static_cast<std::uint64_t>(trial));
            const auto graph = random_dag(rng, 12);

            // Reference makespan from the pure-HEFT schedule.
            coordination::Scheduler::Options heft_options;
            heft_options.objective =
                coordination::Scheduler::Objective::kMakespan;
            heft_options.anneal = false;
            const auto heft = scheduler.schedule(graph, heft_options);
            const double deadline = heft.makespan_s * slack;
            const double horizon = deadline;

            coordination::Scheduler::Options tp_options;
            tp_options.objective =
                coordination::Scheduler::Objective::kEnergy;
            tp_options.deadline_s = deadline;
            tp_options.anneal = true;
            tp_options.anneal_iterations = 150;
            const auto teamplay = scheduler.schedule(graph, tp_options);

            // Single-version flow: strip the frugal versions.
            coordination::TaskGraph single = graph;
            for (auto& task : single.tasks)
                task.versions[""].resize(1);
            const auto single_schedule =
                scheduler.schedule(single, heft_options);

            if (!teamplay.feasible) continue;
            ++feasible;
            teamplay_acc += teamplay.platform_energy_j(tx2, horizon);
            heft_acc += heft.platform_energy_j(tx2, horizon);
            single_acc += single_schedule.platform_energy_j(tx2, horizon);
        }
        if (feasible == 0) {
            std::printf("%-22s %16s\n", (std::to_string(slack) + "x").c_str(),
                        "no feasible DAGs");
            continue;
        }
        std::printf("%-22s %15.3fJ %15.3fJ %15.3fJ   (%d/%d feasible)\n",
                    (std::to_string(slack) + "x").c_str(),
                    teamplay_acc / feasible, heft_acc / feasible,
                    single_acc / feasible, feasible, 12);
    }
    std::printf("expected shape: with slack, the energy-aware multi-version "
                "policy undercuts\nboth baselines; at 1.1x slack the "
                "policies converge (no room to slow down)\n\n");
}

void BM_ScheduleEnergyAware(benchmark::State& state) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    support::Rng rng(5);
    const auto graph = random_dag(rng, static_cast<int>(state.range(0)));
    coordination::Scheduler::Options options;
    options.objective = coordination::Scheduler::Objective::kEnergy;
    options.deadline_s = 1.0;
    options.anneal_iterations = 150;
    for (auto _ : state)
        benchmark::DoNotOptimize(scheduler.schedule(graph, options));
}
BENCHMARK(BM_ScheduleEnergyAware)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleHeft(benchmark::State& state) {
    const auto tx2 = platform::jetson_tx2();
    const coordination::Scheduler scheduler(tx2);
    support::Rng rng(5);
    const auto graph = random_dag(rng, static_cast<int>(state.range(0)));
    coordination::Scheduler::Options options;
    options.objective = coordination::Scheduler::Objective::kMakespan;
    options.anneal = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(scheduler.schedule(graph, options));
}
BENCHMARK(BM_ScheduleHeft)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
