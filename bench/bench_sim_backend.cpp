// Experiment E6: simulator execution tiers — interpreter vs pre-decoded
// threaded-dispatch traces (DESIGN.md §9).
//
// Three views, all recorded in BENCH_sim_backend.json:
//
//   1. Kernel microbenchmark, twice: every UAV task entry executed
//      repeatedly on one machine per tier — once on a predictable core
//      (GR712RC LEON3) and once on a complex core (Apalis TK1 A15) —
//      reporting interpreted vs traced instructions/second and asserting
//      that every RunResult of every repetition is bit-identical between
//      tiers, the identity gate that lets the trace tier substitute for
//      the reference semantics anywhere.
//   2. Service delta: the E1-style mixed batch through a multi-worker
//      ScenarioEngine per backend, reporting per-scenario completion
//      latency p50/p95 and the end-to-end speedup.
//
// The process exits non-zero if any repetition on either core diverges, or
// if the aggregate kernel speedup on the *predictable* core falls below
// 2x: CI treats a performance regression of the trace tier the same way it
// treats an identity break.  The floor is gated on the predictable core
// because that is where decode/dispatch elimination is measurable: complex
// cores draw one Gaussian jitter sample per instruction in *both* tiers
// (the identity guarantee fixes the RNG consumption sequence), and that
// mandatory shared cost bounds any tier speedup well below 2x regardless
// of how fast dispatch gets.  The complex-core table is still reported and
// identity-gated.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/scenario_engine.hpp"
#include "csl/csl.hpp"
#include "platform/platform.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

constexpr int kReps = 40;
/// Timed passes per (kernel, tier); the fastest pass is the throughput
/// estimate.  The bench machine is shared, so any single pass can be
/// inflated by scheduler preemption — the minimum over a few passes is the
/// standard contention-robust estimator, and every rep of every pass still
/// feeds the identity check.
constexpr int kPasses = 3;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct KernelRow {
    std::string entry;
    double interp_ips = 0.0;
    double trace_ips = 0.0;
    double speedup = 0.0;
    std::int64_t instrs_per_run = 0;
    bool identical = true;
};

/// Run `entry` for kPasses passes of kReps runs on one machine; returns
/// every rep's result and, via `wall_s`, the fastest pass's wall time.
/// One machine per tier with equal seeds keeps the stochastic cycle
/// sequences aligned, so rep i is comparable bit-for-bit (control flow is
/// deterministic, so every pass executes the same instruction count).
std::vector<sim::RunResult> measure(const ir::Program& program,
                                    const platform::Core& core,
                                    const std::string& entry,
                                    sim::SimBackend backend,
                                    const std::shared_ptr<sim::TraceCache>& cache,
                                    std::size_t args_count, double& wall_s) {
    sim::Machine machine(program, core, /*opp_index=*/0, /*seed=*/42,
                         sim::SimOptions{backend, cache});
    const std::vector<ir::Word> args(args_count, 0);
    // Hoist trace resolution (compilation) out of the timed region; the
    // interpreter tier gets a free warm-up run for symmetry.
    if (backend == sim::SimBackend::kTrace) (void)machine.resolve_trace(entry);
    std::vector<sim::RunResult> results;
    results.reserve(static_cast<std::size_t>(kPasses) * kReps);
    wall_s = 0.0;
    for (int pass = 0; pass < kPasses; ++pass) {
        const auto start = std::chrono::steady_clock::now();
        for (int rep = 0; rep < kReps; ++rep)
            results.push_back(machine.run(entry, args));
        const double pass_s = seconds_since(start);
        if (pass == 0 || pass_s < wall_s) wall_s = pass_s;
    }
    return results;
}

bool identical_runs(const sim::RunResult& a, const sim::RunResult& b) {
    return a.cycles == b.cycles && a.time_s == b.time_s &&
           a.dynamic_energy_j == b.dynamic_energy_j &&
           a.static_energy_j == b.static_energy_j &&
           a.ret_value == b.ret_value &&
           a.instrs_executed == b.instrs_executed &&
           a.class_counts == b.class_counts;
}

/// Measure every task entry of `app` on `core` (which need not belong to
/// the app's own platform: the predictable-core view runs the same UAV
/// kernels on a LEON3 model).
std::vector<KernelRow> kernel_table(const UseCaseApp& app,
                                    const platform::Core& core,
                                    const char* platform_name) {
    const auto spec = csl::parse(app.csl_source);
    const auto cache = std::make_shared<sim::TraceCache>();
    std::vector<KernelRow> rows;

    std::printf("=== E6: sim backends, %s kernels on %s (core %s, %s) ===\n",
                app.name.c_str(), platform_name, core.name.c_str(),
                core.model.predictable ? "predictable" : "complex");
    for (const auto& task : spec.tasks) {
        const ir::Function* fn = app.program.find(task.entry);
        if (fn == nullptr) continue;
        KernelRow row;
        row.entry = task.entry;

        double interp_s = 0.0;
        double trace_s = 0.0;
        const auto interp =
            measure(app.program, core, task.entry, sim::SimBackend::kInterp,
                    nullptr, static_cast<std::size_t>(fn->param_count),
                    interp_s);
        const auto trace =
            measure(app.program, core, task.entry, sim::SimBackend::kTrace,
                    cache, static_cast<std::size_t>(fn->param_count),
                    trace_s);

        std::int64_t total_instrs = 0;
        for (std::size_t rep = 0; rep < interp.size(); ++rep) {
            total_instrs += interp[rep].instrs_executed;
            if (!identical_runs(interp[rep], trace[rep]))
                row.identical = false;
        }
        row.instrs_per_run = total_instrs / (kReps * kPasses);
        // Throughput = one pass's instructions over the fastest pass.
        const auto pass_instrs =
            static_cast<double>(total_instrs) / kPasses;
        row.interp_ips = pass_instrs / interp_s;
        row.trace_ips = pass_instrs / trace_s;
        row.speedup = row.trace_ips / row.interp_ips;
        std::printf("%-18s %8lld instrs  interp %9.2f Minstr/s  "
                    "trace %9.2f Minstr/s  %5.2fx %s\n",
                    row.entry.c_str(),
                    static_cast<long long>(row.instrs_per_run),
                    row.interp_ips / 1e6, row.trace_ips / 1e6, row.speedup,
                    row.identical ? "(identical)" : "(MISMATCH!)");
        rows.push_back(std::move(row));
    }
    return rows;
}

struct ServiceRow {
    double wall_s = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
};

/// E1-style mixed batch through a 4-worker engine on one backend;
/// completion latencies measured from batch start (all requests are
/// submitted up front, so this is queueing + service time).
ServiceRow service_run(const std::vector<UseCaseApp>& apps,
                       sim::SimBackend backend) {
    core::ScenarioEngine::Options options;
    options.worker_threads = 4;
    options.sim = sim::SimOptions{backend, nullptr};
    core::ScenarioEngine engine(options);

    std::vector<core::ScenarioRequest> requests;
    for (const auto& app : apps) {
        for (const int variant : {0, 1}) {
            core::ScenarioRequest request;
            request.program = &app.program;
            request.platform = &app.platform;
            request.csl_source = app.csl_source;
            request.options.compiler.population = 6;
            request.options.compiler.iterations = 6;
            request.options.profile_runs = 10;
            request.options.scheduler.anneal_iterations = 80;
            if (variant == 1) request.options.scheduler.seed = 7;
            request.label = app.name + "/v" + std::to_string(variant);
            requests.push_back(std::move(request));
        }
    }

    std::vector<double> latencies_s(requests.size(), 0.0);
    std::vector<core::ScenarioTicket> tickets;
    tickets.reserve(requests.size());
    const auto start = std::chrono::steady_clock::now();
    for (auto& request : requests) {
        const std::size_t index = tickets.size();
        tickets.push_back(engine.submit(
            request, [&latencies_s, index, start](
                         const core::ScenarioOutcome&) {
                latencies_s[index] = seconds_since(start);
            }));
    }
    for (auto& ticket : tickets) ticket.wait();

    ServiceRow row;
    row.wall_s = seconds_since(start);
    auto sorted = latencies_s;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
        return 1e3 * sorted[static_cast<std::size_t>(
                         q * static_cast<double>(sorted.size() - 1))];
    };
    row.p50_ms = at(0.50);
    row.p95_ms = at(0.95);
    return row;
}

void BM_SimBackendKernel(benchmark::State& state) {
    const auto app = make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);
    const auto& entry = spec.tasks.front().entry;
    const ir::Function* fn = app.program.find(entry);
    const auto backend = state.range(0) == 0 ? sim::SimBackend::kInterp
                                             : sim::SimBackend::kTrace;
    sim::Machine machine(app.program, app.platform.cores.front(), 0, 42,
                         sim::SimOptions{backend, nullptr});
    const std::vector<ir::Word> args(
        static_cast<std::size_t>(fn->param_count), 0);
    std::int64_t instrs = 0;
    for (auto _ : state) {
        const auto result = machine.run(entry, args);
        instrs += result.instrs_executed;
        benchmark::DoNotOptimize(result.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimBackendKernel)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"trace"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

/// Aggregate over a kernel table: total instructions over total wall time
/// per tier (instrs/ips recovers each kernel's wall clock).
struct Aggregate {
    double interp_ips = 0.0;
    double trace_ips = 0.0;
    double speedup = 0.0;
    bool identical = true;
};

Aggregate aggregate_of(const std::vector<KernelRow>& rows) {
    Aggregate agg;
    double interp_wall = 0.0;
    double trace_wall = 0.0;
    std::int64_t total_instrs = 0;
    for (const auto& row : rows) {
        const double instrs =
            static_cast<double>(row.instrs_per_run) * kReps;
        interp_wall += instrs / row.interp_ips;
        trace_wall += instrs / row.trace_ips;
        total_instrs += row.instrs_per_run * kReps;
        agg.identical = agg.identical && row.identical;
    }
    agg.interp_ips = static_cast<double>(total_instrs) / interp_wall;
    agg.trace_ips = static_cast<double>(total_instrs) / trace_wall;
    agg.speedup = agg.trace_ips / agg.interp_ips;
    std::printf("aggregate: interp %.2f Minstr/s, trace %.2f Minstr/s "
                "(%.2fx), identity %s\n",
                agg.interp_ips / 1e6, agg.trace_ips / 1e6, agg.speedup,
                agg.identical ? "OK" : "BROKEN");
    return agg;
}

int main(int argc, char** argv) {
    const auto uav = make_uav_app("apalis-tk1");
    const auto leon3 = platform::gr712rc();

    const auto pred_rows =
        kernel_table(uav, leon3.cores.front(), leon3.name.c_str());
    const auto pred_agg = aggregate_of(pred_rows);
    const auto complex_rows = kernel_table(
        uav, uav.platform.cores.front(), uav.platform.name.c_str());
    const auto complex_agg = aggregate_of(complex_rows);

    const bool all_identical = pred_agg.identical && complex_agg.identical;

    std::vector<UseCaseApp> service_apps;
    service_apps.push_back(make_uav_app("apalis-tk1"));
    service_apps.push_back(make_rover_app("apalis-tk1"));
    const auto interp_service =
        service_run(service_apps, sim::SimBackend::kInterp);
    const auto trace_service =
        service_run(service_apps, sim::SimBackend::kTrace);
    std::printf("service (interp): %.3f s wall, p50 %8.2f ms, p95 %8.2f ms\n",
                interp_service.wall_s, interp_service.p50_ms,
                interp_service.p95_ms);
    std::printf("service (trace):  %.3f s wall, p50 %8.2f ms, p95 %8.2f ms "
                "(%.2fx end-to-end)\n",
                trace_service.wall_s, trace_service.p50_ms,
                trace_service.p95_ms,
                interp_service.wall_s / trace_service.wall_s);

    using benchjson::Array;
    using benchjson::Object;
    using benchjson::Value;
    const auto table_json = [](const std::vector<KernelRow>& rows,
                               const Aggregate& agg,
                               const std::string& platform_name,
                               const std::string& core_name) {
        Array kernel_rows;
        for (const auto& row : rows) {
            kernel_rows.push_back(Value(Object{
                {"entry", row.entry},
                {"instrs_per_run", row.instrs_per_run},
                {"interp_instr_per_s", row.interp_ips},
                {"trace_instr_per_s", row.trace_ips},
                {"speedup", row.speedup},
                {"identical", row.identical},
            }));
        }
        return Value(Object{
            {"platform", platform_name},
            {"core", core_name},
            {"kernels", std::move(kernel_rows)},
            {"aggregate",
             Value(Object{
                 {"interp_instr_per_s", agg.interp_ips},
                 {"trace_instr_per_s", agg.trace_ips},
                 {"speedup", agg.speedup},
                 {"identical", agg.identical},
             })},
        });
    };
    benchjson::write_artifact(
        "sim_backend",
        Value(Object{
            {"experiment", "sim_backend"},
            {"app", uav.name},
            {"reps", kReps},
            {"predictable", table_json(pred_rows, pred_agg, leon3.name,
                                       leon3.cores.front().name)},
            {"complex",
             table_json(complex_rows, complex_agg, uav.platform.name,
                        uav.platform.cores.front().name)},
            {"service",
             Value(Object{
                 {"interp", Value(Object{{"wall_s", interp_service.wall_s},
                                         {"p50_ms", interp_service.p50_ms},
                                         {"p95_ms", interp_service.p95_ms}})},
                 {"trace", Value(Object{{"wall_s", trace_service.wall_s},
                                        {"p50_ms", trace_service.p50_ms},
                                        {"p95_ms", trace_service.p95_ms}})},
                 {"wall_speedup",
                  interp_service.wall_s / trace_service.wall_s},
             })},
        }));

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: trace tier diverged from interpreter\n");
        return 1;
    }
    if (pred_agg.speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: predictable-core trace tier speedup %.2fx below "
                     "the 2x floor\n",
                     pred_agg.speedup);
        return 1;
    }
    return 0;
}
