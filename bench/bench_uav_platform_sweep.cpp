// Experiment E2: UAV use case across platform variants x DVFS OPP sweeps,
// driven through the engine's streaming submission API.
//
// The UAV search-and-rescue application runs on three embedded platforms
// (Apalis TK1, Jetson TX2, Jetson Nano); for each platform the bench sweeps
// a DVFS governor cap that truncates every core's OPP table to its lowest
// k operating points (k = 1, 2, full) — the ΔELTA-style question: how do
// the certified time/energy bounds and the toolchain's own cost move as
// the frequency range narrows?  Each (platform, cap) variant is one
// scenario submitted via `ScenarioEngine::submit`; completion callbacks
// consume certificates in completion order, and per-stage telemetry
// attributes where the pipeline spends its time (profiling campaigns
// shrink with the OPP count; scheduling does not).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/scenario_engine.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

constexpr const char* kPlatforms[] = {"apalis-tk1", "jetson-tx2",
                                      "jetson-nano"};
constexpr std::size_t kOppCaps[] = {1, 2, 0};  ///< 0 = full table

/// Truncate every core's OPP table to its lowest `cap` points (a DVFS
/// governor ceiling).  cap == 0 leaves the platform untouched.
platform::Platform cap_opps(platform::Platform platform, std::size_t cap) {
    if (cap == 0) return platform;
    for (auto& core : platform.cores)
        core.opps.resize(std::min(cap, core.opps.size()));
    return platform;
}

std::string variant_label(const std::string& platform, std::size_t cap) {
    return platform + (cap == 0 ? "/opp-full"
                                : "/opp-cap" + std::to_string(cap));
}

struct Sweep {
    std::vector<UseCaseApp> apps;  ///< owns programs/platforms
    std::vector<core::ScenarioRequest> requests;
};

Sweep make_sweep() {
    Sweep sweep;
    for (const char* platform_name : kPlatforms) {
        for (const std::size_t cap : kOppCaps) {
            auto app = make_uav_app(platform_name);
            app.platform = cap_opps(std::move(app.platform), cap);
            app.name = variant_label(platform_name, cap);
            sweep.apps.push_back(std::move(app));
        }
    }
    for (const auto& app : sweep.apps) {
        core::ScenarioRequest request;
        request.program = &app.program;
        request.platform = &app.platform;
        request.csl_source = app.csl_source;
        request.options.profile_runs = 10;
        request.options.scheduler.anneal_iterations = 120;
        request.label = app.name;
        sweep.requests.push_back(std::move(request));
    }
    return sweep;
}

void print_table() {
    const auto sweep = make_sweep();
    std::printf("=== E2: UAV platform x DVFS sweep, %zu variants ===\n",
                sweep.requests.size());

    core::ScenarioEngine engine({.worker_threads = 4});
    std::mutex io_mutex;
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::ScenarioTicket> tickets;
    tickets.reserve(sweep.requests.size());
    for (const auto& request : sweep.requests) {
        tickets.push_back(engine.submit(
            request, [&io_mutex](const core::ScenarioOutcome& outcome) {
                // Streamed consumption: certificates surface per scenario,
                // in completion order, while the rest of the sweep runs.
                const std::lock_guard<std::mutex> lock(io_mutex);
                if (outcome.report == nullptr) {
                    std::printf("%-24s FAILED\n", outcome.label.c_str());
                    return;
                }
                const auto& report = *outcome.report;
                std::printf(
                    "%-24s makespan %8.3f ms  energy %8.3f mJ  cert %s\n",
                    outcome.label.c_str(), 1e3 * report.schedule.makespan_s,
                    1e3 * report.schedule.dynamic_energy_j(),
                    report.certificate.all_hold() ? "VALID" : "INVALID");
            }));
    }
    for (auto& ticket : tickets) ticket.wait();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();

    // Retrieve the reports (tickets are still holding them — the streamed
    // callbacks only printed) for the machine-readable artifact.
    benchjson::Array variants;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        try {
            const auto report = tickets[i].get();
            variants.push_back(benchjson::Object{
                {"variant", sweep.requests[i].label},
                {"makespan_ms", 1e3 * report.schedule.makespan_s},
                {"energy_mj", 1e3 * report.schedule.dynamic_energy_j()},
                {"certificate_valid", report.certificate.all_hold()},
            });
        } catch (const std::exception& error) {
            variants.push_back(benchjson::Object{
                {"variant", sweep.requests[i].label},
                {"error", error.what()},
            });
        }
    }

    const auto cache = engine.cache_stats();
    std::printf("sweep: %zu scenarios in %.3f s (%.2f scenarios/s, "
                "%zu threads; cache: %llu hits / %llu misses)\n",
                sweep.requests.size(), wall_s,
                static_cast<double>(sweep.requests.size()) / wall_s,
                engine.concurrency(),
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
    std::printf("per-stage telemetry:\n%s\n",
                engine.stage_telemetry().to_string().c_str());
    benchjson::write_artifact(
        "uav_platform_sweep",
        benchjson::Object{
            {"experiment", "E2 UAV platform x DVFS sweep"},
            {"scenarios", sweep.requests.size()},
            {"wall_s", wall_s},
            {"scenarios_per_s",
             static_cast<double>(sweep.requests.size()) / wall_s},
            {"cache_hits", cache.hits},
            {"cache_misses", cache.misses},
            {"variants", std::move(variants)},
        });
}

void BM_UavPlatformSweep(benchmark::State& state) {
    const auto sweep = make_sweep();
    const auto workers = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        core::ScenarioEngine engine({.worker_threads = workers});
        std::vector<core::ScenarioTicket> tickets;
        tickets.reserve(sweep.requests.size());
        for (const auto& request : sweep.requests)
            tickets.push_back(engine.submit(request));
        for (auto& ticket : tickets)
            benchmark::DoNotOptimize(ticket.get());
    }
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(sweep.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UavPlatformSweep)
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Same sweep on a warm engine with a tight cache budget: the service
/// configuration (bounded memory, shared results where the budget allows).
void BM_UavPlatformSweepBounded(benchmark::State& state) {
    const auto sweep = make_sweep();
    core::ScenarioEngine engine(
        {.worker_threads = 4,
         .cache_budget = {.max_entries =
                              static_cast<std::size_t>(state.range(0))}});
    for (auto _ : state) {
        std::vector<core::ScenarioTicket> tickets;
        tickets.reserve(sweep.requests.size());
        for (const auto& request : sweep.requests)
            tickets.push_back(engine.submit(request));
        for (auto& ticket : tickets)
            benchmark::DoNotOptimize(ticket.get());
    }
    const auto cache = engine.cache_stats();
    state.counters["evictions"] =
        static_cast<double>(cache.evictions) /
        static_cast<double>(state.iterations());
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(sweep.requests.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UavPlatformSweepBounded)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
