// Experiment E4: sharded service core — throughput and cross-program
// memoisation on mixed-app batches.
//
// Routes a mixed batch (all five use cases, including the rover, whose
// perception stack structurally equals the UAV's, times option variants)
// through `ShardedScenarioEngine` at 1/2/4 shards and reports:
//
//   * batch throughput per shard count (scenarios/s, merged cache stats);
//   * cross-program hits: evaluation-cache hits that only exist because
//     two *different* applications share a kernel — measured as the miss
//     reduction of the mixed batch versus the same batch partitioned into
//     one isolated engine per app (within-app redundancy cancels out);
//   * certificate byte-identity: every report from every shard count must
//     equal the single-engine output bit for bit (the sharded core changes
//     *where* work runs and *what* is recomputed, never a single analysed
//     bound).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/sharded_engine.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

namespace {

struct Batch {
    std::vector<UseCaseApp> apps;  ///< owns programs/platforms
    std::vector<core::ScenarioRequest> requests;
};

/// Five apps x 2 option variants.  The UAV and the rover run on the same
/// board, so their shared perception kernels (capture/resize/detect) carry
/// identical cache keys across the two programs.
Batch make_batch() {
    Batch batch;
    batch.apps.push_back(make_camera_pill_app());      // predictable
    batch.apps.push_back(make_space_app());            // predictable
    batch.apps.push_back(make_uav_app("apalis-tk1"));  // complex
    batch.apps.push_back(make_rover_app("apalis-tk1"));  // complex, shares
    batch.apps.push_back(make_parking_app(false));     // complex (TK1)

    for (const auto& app : batch.apps) {
        for (const int variant : {0, 1}) {
            core::ScenarioRequest request;
            request.program = &app.program;
            request.platform = &app.platform;
            request.csl_source = app.csl_source;
            request.options.compiler.population = 8;
            request.options.compiler.iterations = 8;
            request.options.profile_runs = 10;
            request.options.scheduler.anneal_iterations = 120;
            if (variant == 1) request.options.scheduler.seed = 7;
            request.label = app.name + "/v" + std::to_string(variant);
            batch.requests.push_back(std::move(request));
        }
    }
    return batch;
}

/// Misses when every app runs in its own isolated engine (same options,
/// same within-app redundancy, zero cross-app sharing).
std::uint64_t isolated_misses(const Batch& batch) {
    std::uint64_t total = 0;
    for (const auto& app : batch.apps) {
        core::ScenarioEngine engine({.worker_threads = 4});
        std::vector<core::ScenarioRequest> own;
        for (const auto& request : batch.requests)
            if (request.program == &app.program) own.push_back(request);
        core::BatchStats stats;
        (void)engine.run_all(own, &stats);
        total += stats.cache.misses;
    }
    return total;
}

bool print_table() {
    const auto batch = make_batch();
    std::printf("=== E4: sharded service core, %zu mixed scenarios "
                "(%zu apps) ===\n",
                batch.requests.size(), batch.apps.size());

    // Reference: single engine (the byte-identity baseline).
    core::ScenarioEngine reference({.worker_threads = 4});
    const auto baseline = reference.run_all(batch.requests);

    const std::uint64_t isolated = isolated_misses(batch);

    bool all_identical = true;
    benchjson::Array shard_rows;
    for (const std::size_t shards : {1UL, 2UL, 4UL}) {
        core::ShardedScenarioEngine engine(
            {.shards = shards, .worker_threads = 4});
        core::BatchStats stats;
        const auto reports = engine.run_all(batch.requests, &stats);

        std::size_t identical = 0;
        for (std::size_t i = 0; i < reports.size(); ++i)
            if (reports[i].certificate.to_text() ==
                baseline[i].certificate.to_text())
                ++identical;
        // The primary-kernel router colocates apps that share their
        // pipeline front (UAV/rover), so cross-program hits survive any
        // shard count.
        const std::uint64_t cross =
            isolated > stats.cache.misses ? isolated - stats.cache.misses
                                          : 0;
        std::printf(
            "%zu shard(s): %6.2f scenarios/s; cache %llu hits / %llu "
            "misses (%llu cross-program); certificates identical %zu/%zu "
            "%s\n",
            shards, stats.scenarios_per_s,
            static_cast<unsigned long long>(stats.cache.hits),
            static_cast<unsigned long long>(stats.cache.misses),
            static_cast<unsigned long long>(cross), identical,
            reports.size(),
            identical == reports.size() ? "(OK)" : "(MISMATCH!)");
        all_identical = all_identical && identical == reports.size();
        shard_rows.push_back(benchjson::Object{
            {"shards", shards},
            {"scenarios_per_s", stats.scenarios_per_s},
            {"wall_s", stats.wall_s},
            {"cache_hits", stats.cache.hits},
            {"cache_misses", stats.cache.misses},
            {"cross_program_hits", cross},
            {"certificates_identical", identical == reports.size()},
        });
    }
    std::printf("isolated per-app engines: %llu misses (cross-program "
                "sharing disabled)\n",
                static_cast<unsigned long long>(isolated));
    benchjson::write_artifact(
        "shard_scaling",
        benchjson::Object{
            {"experiment", "E4 sharded service core"},
            {"scenarios", batch.requests.size()},
            {"apps", batch.apps.size()},
            {"isolated_misses", isolated},
            {"shard_counts", std::move(shard_rows)},
            {"all_certificates_identical", all_identical},
        });
    return all_identical;
}

void BM_ShardedBatch(benchmark::State& state) {
    const auto batch = make_batch();
    const auto shards = static_cast<std::size_t>(state.range(0));
    const std::uint64_t isolated = isolated_misses(batch);
    std::uint64_t misses = 0;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        core::ShardedScenarioEngine engine(
            {.shards = shards, .worker_threads = 4});
        core::BatchStats stats;
        benchmark::DoNotOptimize(engine.run_all(batch.requests, &stats));
        misses += stats.cache.misses;
        hits += stats.cache.hits;
    }
    const auto iterations =
        static_cast<std::uint64_t>(state.iterations());
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(batch.requests.size() * iterations),
        benchmark::Counter::kIsRate);
    state.counters["hits"] =
        static_cast<double>(hits) / static_cast<double>(iterations);
    state.counters["cross_program_hits"] =
        static_cast<double>(isolated * iterations > misses
                                ? isolated - misses / iterations
                                : 0);
}
BENCHMARK(BM_ShardedBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    // A certificate mismatch must fail the process: the CI bench-smoke
    // step relies on this table as the sharded-vs-single byte-identity
    // gate.
    const bool identical = print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return identical ? 0 : 1;
}
