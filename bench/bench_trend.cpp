// Trajectory collator: fold every BENCH_*.json artifact in the working
// directory into one BENCH_trajectory.json.
//
// Each bench binary writes its own self-identifying artifact (bench_json.hpp);
// this tool runs after the bench smoke suite and splices the raw artifact
// texts — they are already valid JSON — under their names, stamped with the
// collating commit and time.  CI uploads the result alongside the per-bench
// files, so one download tracks the whole performance trajectory of a commit
// without scraping logs.
//
//   $ ./bench_trend            # collates ./BENCH_*.json
//
// Exit status: 0 when at least one artifact was collated and the trajectory
// was published, 1 otherwise (an empty trajectory would silently hide a
// bench-smoke wiring failure).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"

namespace fs = std::filesystem;

namespace {

struct Artifact {
    std::string name;  ///< "service_trace" from BENCH_service_trace.json
    std::string text;  ///< raw JSON, trailing whitespace trimmed
};

/// BENCH_<name>.json files in `dir`, excluding the trajectory itself (a
/// rerun must not recursively embed its own previous output) and staging
/// leftovers.  Sorted by name so the collated object diffs cleanly.
std::vector<Artifact> collect(const fs::path& dir) {
    std::vector<Artifact> artifacts;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string filename = entry.path().filename().string();
        if (filename.rfind("BENCH_", 0) != 0) continue;
        if (filename.size() < 12 ||
            filename.substr(filename.size() - 5) != ".json")
            continue;
        const std::string name =
            filename.substr(6, filename.size() - 6 - 5);
        if (name == "trajectory") continue;

        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string text = buffer.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r' ||
                text.back() == ' '))
            text.pop_back();
        if (!in || text.empty() || text.front() != '{') {
            std::fprintf(stderr, "warning: skipping malformed %s\n",
                         filename.c_str());
            continue;
        }
        artifacts.push_back({name, std::move(text)});
    }
    std::sort(artifacts.begin(), artifacts.end(),
              [](const Artifact& a, const Artifact& b) {
                  return a.name < b.name;
              });
    return artifacts;
}

}  // namespace

int main() {
    using teamplay::benchjson::Value;
    const auto artifacts = collect(fs::current_path());
    if (artifacts.empty()) {
        std::fprintf(stderr,
                     "bench_trend: no BENCH_*.json artifacts found in %s\n",
                     fs::current_path().string().c_str());
        return 1;
    }

    // The artifact texts are spliced raw (each already carries its own
    // git_sha/generated_utc), so the trajectory is assembled as text and
    // published with the same stage-and-rename discipline as
    // benchjson::write_artifact.
    std::ostringstream os;
    os << "{\"git_sha\":";
    Value(teamplay::benchjson::git_sha()).dump(os);
    os << ",\"generated_utc\":\"" << teamplay::benchjson::utc_timestamp()
       << "\",\"artifacts\":{";
    bool first = true;
    for (const auto& artifact : artifacts) {
        if (!first) os << ',';
        first = false;
        Value(artifact.name).dump(os);
        os << ':' << artifact.text;
    }
    os << "}}\n";
    const std::string text = os.str();

    const std::string path = "BENCH_trajectory.json";
    const std::string staged = path + ".tmp";
    std::FILE* file = std::fopen(staged.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "bench_trend: cannot write %s\n",
                     staged.c_str());
        return 1;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
    ok = std::fflush(file) == 0 && ok;
    std::fclose(file);
    if (!ok || std::rename(staged.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "bench_trend: cannot publish %s\n",
                     path.c_str());
        std::remove(staged.c_str());
        return 1;
    }
    std::printf("bench_trend: collated %zu artifact(s) into %s\n",
                artifacts.size(), path.c_str());
    return 0;
}
