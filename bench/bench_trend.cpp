// Trajectory collator: fold every BENCH_*.json artifact in the working
// directory into one BENCH_trajectory.json.
//
// Each bench binary writes its own self-identifying artifact (bench_json.hpp);
// this tool runs after the bench smoke suite and splices the raw artifact
// texts — they are already valid JSON — under their names, stamped with the
// collating commit and time.  CI uploads the result alongside the per-bench
// files, so one download tracks the whole performance trajectory of a commit
// without scraping logs.
//
//   $ ./bench_trend            # collates ./BENCH_*.json
//
// Exit status: 0 when at least one artifact was collated and the trajectory
// was published, 1 otherwise (an empty trajectory would silently hide a
// bench-smoke wiring failure).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"

namespace fs = std::filesystem;

namespace {

struct Artifact {
    std::string name;  ///< "service_trace" from BENCH_service_trace.json
    std::string text;  ///< raw JSON, trailing whitespace trimmed
};

/// Structural completeness check for an artifact about to be spliced raw
/// into the trajectory: a JSON object whose braces/brackets balance
/// outside string literals, with nothing after the closing brace.  A
/// partially-written artifact (bench killed mid-fwrite, disk full)
/// typically starts with '{' but never closes it; splicing it verbatim
/// would corrupt the whole trajectory, which is exactly the one-bad-file
/// failure this collator must survive.
bool looks_like_complete_json_object(const std::string& text) {
    if (text.empty() || text.front() != '{') return false;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{':
            case '[': ++depth; break;
            case '}':
            case ']':
                if (--depth < 0) return false;
                if (depth == 0 && i + 1 != text.size())
                    return false;  // trailing garbage after the object
                break;
            default: break;
        }
    }
    return depth == 0 && !in_string;
}

/// BENCH_<name>.json files in `dir`, excluding the trajectory itself (a
/// rerun must not recursively embed its own previous output) and staging
/// leftovers.  Sorted by name so the collated object diffs cleanly.
/// Malformed or partially-written artifacts are skipped and counted in
/// `skipped` — one corrupt file must not kill the trajectory upload.
std::vector<Artifact> collect(const fs::path& dir, std::size_t& skipped) {
    std::vector<Artifact> artifacts;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string filename = entry.path().filename().string();
        if (filename.rfind("BENCH_", 0) != 0) continue;
        if (filename.size() < 12 ||
            filename.substr(filename.size() - 5) != ".json")
            continue;
        const std::string name =
            filename.substr(6, filename.size() - 6 - 5);
        if (name == "trajectory") continue;

        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string text = buffer.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r' ||
                text.back() == ' '))
            text.pop_back();
        if (in.bad() || !looks_like_complete_json_object(text)) {
            std::fprintf(stderr,
                         "warning: skipping malformed or truncated %s\n",
                         filename.c_str());
            ++skipped;
            continue;
        }
        artifacts.push_back({name, std::move(text)});
    }
    std::sort(artifacts.begin(), artifacts.end(),
              [](const Artifact& a, const Artifact& b) {
                  return a.name < b.name;
              });
    return artifacts;
}

}  // namespace

int main() {
    using teamplay::benchjson::Value;
    std::size_t skipped = 0;
    const auto artifacts = collect(fs::current_path(), skipped);
    if (artifacts.empty()) {
        std::fprintf(stderr,
                     "bench_trend: no usable BENCH_*.json artifacts in %s"
                     " (%zu skipped as malformed)\n",
                     fs::current_path().string().c_str(), skipped);
        return 1;
    }

    // The artifact texts are spliced raw (each already carries its own
    // git_sha/generated_utc), so the trajectory is assembled as text and
    // published with the same stage-and-rename discipline as
    // benchjson::write_artifact.
    std::ostringstream os;
    os << "{\"git_sha\":";
    Value(teamplay::benchjson::git_sha()).dump(os);
    os << ",\"generated_utc\":\"" << teamplay::benchjson::utc_timestamp()
       << "\",\"skipped_malformed\":" << skipped << ",\"artifacts\":{";
    bool first = true;
    for (const auto& artifact : artifacts) {
        if (!first) os << ',';
        first = false;
        Value(artifact.name).dump(os);
        os << ':' << artifact.text;
    }
    os << "}}\n";
    const std::string text = os.str();

    const std::string path = "BENCH_trajectory.json";
    const std::string staged = path + ".tmp";
    std::FILE* file = std::fopen(staged.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "bench_trend: cannot write %s\n",
                     staged.c_str());
        return 1;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
    ok = std::fflush(file) == 0 && ok;
    std::fclose(file);
    if (!ok || std::rename(staged.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "bench_trend: cannot publish %s\n",
                     path.c_str());
        std::remove(staged.c_str());
        return 1;
    }
    std::printf(
        "bench_trend: collated %zu artifact(s) into %s (%zu skipped)\n",
        artifacts.size(), path.c_str(), skipped);
    return 0;
}
